//! Lock-light metrics registry: atomic counters, gauges and fixed-bucket
//! histograms, plus the [`EngineMetrics`] bundle the engine records into.
//!
//! Everything here is a relaxed atomic — no locks, no allocation on the
//! hot path — so the executor and buffer pool can record per-batch and
//! per-query without measurable overhead (EXPERIMENTS.md O2 pins the
//! budget at ≤5% on the execution sweep).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Upper bounds (µs) for latency histograms: 50µs … 1s, then +Inf.
pub const TIME_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// Upper bounds (µs) for *contention* histograms: lock and I/O waits are
/// usually well under 50µs (uncontended lock acquisition is tens of
/// nanoseconds), so these start at 1µs to resolve the uncontended mass
/// from the tail the commit lock and WAL sync produce under load.
pub const WAIT_BUCKETS_US: &[u64] = &[
    1, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    1_000_000,
];

/// A fixed-bucket histogram: one atomic per bucket plus sum and count.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; the last is the +Inf overflow.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            sum: self.sum.load(Relaxed),
            count: self.count.load(Relaxed),
        }
    }

    /// Run `f`, observing its wall time in µs. This is the timed-wrapper
    /// discipline for contention sites: the wait *is* the closure, so a
    /// call site cannot acquire without stamping.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.observe(start.elapsed().as_micros() as u64);
        out
    }

    /// Like [`Histogram::time`], but skips the clock reads entirely when
    /// `enabled` is false (metrics off must cost nothing).
    pub fn time_if<T>(&self, enabled: bool, f: impl FnOnce() -> T) -> T {
        if enabled {
            self.time(f)
        } else {
            f()
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(TIME_BUCKETS_US)
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the smallest bucket whose cumulative count reaches
    /// fraction `q` (0..=1) of all observations: the bucketed quantile
    /// estimate a fixed-bucket histogram can give. `None` when empty;
    /// `f64::INFINITY` when the quantile lands in the overflow bucket.
    pub fn quantile_bound(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(match self.bounds.get(i) {
                    Some(b) => *b as f64,
                    None => f64::INFINITY,
                });
            }
        }
        Some(f64::INFINITY)
    }

    /// Upper bound of the highest non-empty bucket (`f64::INFINITY` for
    /// the overflow bucket); `None` when the histogram is empty.
    pub fn max_bound(&self) -> Option<f64> {
        let last = self.counts.iter().rposition(|&c| c > 0)?;
        Some(match self.bounds.get(last) {
            Some(b) => *b as f64,
            None => f64::INFINITY,
        })
    }

    /// Prometheus rendering with an extra label set (e.g. `session="3"`)
    /// merged into every series; empty `labels` renders bare series.
    pub fn render_prometheus_labeled(&self, name: &str, labels: &str, out: &mut String) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            let le = match self.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            if labels.is_empty() {
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            } else {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{le}\",{labels}}} {cumulative}\n"
                ));
            }
        }
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!("{name}_sum{suffix} {}\n", self.sum));
        out.push_str(&format!("{name}_count{suffix} {}\n", self.count));
    }
}

/// The engine-wide registry: every counter the engine records, one field
/// per metric. `Database` holds one per instance and mirrors its
/// engine-level recordings into [`crate::global`].
///
/// The `pool_*`/`disk_*` fields accumulate *query-path deltas* (pages
/// touched by queries the engine measured). A per-database
/// `metrics_snapshot()` overwrites those with live buffer-pool totals —
/// authoritative, and inclusive of DDL/ANALYZE traffic — while the global
/// aggregate reports the accumulated deltas across every database.
#[derive(Debug)]
pub struct EngineMetrics {
    // -- storage (query-path deltas; see type docs) -------------------------
    pub pool_hits: Counter,
    pub pool_misses: Counter,
    pub pool_evictions: Counter,
    pub pool_retries: Counter,
    pub pool_corruptions: Counter,
    pub disk_reads: Counter,
    pub disk_writes: Counter,
    // -- optimizer ----------------------------------------------------------
    pub optimize_calls: Counter,
    pub plans_considered: Counter,
    pub plans_pruned: Counter,
    pub optimize_time_us: Histogram,
    // -- static plan verification -------------------------------------------
    pub plans_verified: Counter,
    pub verify_failures: Counter,
    pub lints_flagged: Counter,
    // -- executor -----------------------------------------------------------
    pub exec_batches: Counter,
    pub exec_rows: Counter,
    pub exec_spills: Counter,
    pub execute_time_us: Histogram,
    // -- engine -------------------------------------------------------------
    pub queries: Counter,
    pub slow_queries: Counter,
    pub governor_kills: Counter,
    pub faults_injected: Counter,
    pub silent_corruptions: Counter,
    /// Statements executed (all kinds, not just SELECT).
    pub statements: Counter,
    /// Statements that returned an error.
    pub statement_errors: Counter,
    // -- durability (WAL; zero when durability is off) ----------------------
    pub wal_records_written: Counter,
    pub wal_bytes: Counter,
    pub checkpoints: Counter,
    pub recoveries: Counter,
    pub recovery_replayed_records: Counter,
    /// Syncs a committer skipped because a group-commit peer already
    /// durably covered its LSN.
    pub wal_coalesced_syncs: Counter,
    // -- contention (PR 8's wait points, timed at the lockorder sites) ------
    /// Wall time a writer spent waiting to acquire the commit lock.
    pub commit_lock_wait_us: Histogram,
    /// Wall time `Wal::sync_through` spent making an LSN durable
    /// (including waits coalesced behind a peer's in-flight fsync).
    pub wal_sync_wait_us: Histogram,
    /// Physical read + verify latency on a buffer-pool miss (the
    /// off-lock single-flight I/O).
    pub pool_miss_io_us: Histogram,
    /// Wall time a pool reader spent waiting on another thread's
    /// in-flight load of the same page (single-flight wait).
    pub pool_load_wait_us: Histogram,
    /// Wall time to acquire a frozen read snapshot (cache hit or rebuild).
    pub snapshot_acquire_us: Histogram,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            pool_hits: Counter::default(),
            pool_misses: Counter::default(),
            pool_evictions: Counter::default(),
            pool_retries: Counter::default(),
            pool_corruptions: Counter::default(),
            disk_reads: Counter::default(),
            disk_writes: Counter::default(),
            optimize_calls: Counter::default(),
            plans_considered: Counter::default(),
            plans_pruned: Counter::default(),
            optimize_time_us: Histogram::default(),
            plans_verified: Counter::default(),
            verify_failures: Counter::default(),
            lints_flagged: Counter::default(),
            exec_batches: Counter::default(),
            exec_rows: Counter::default(),
            exec_spills: Counter::default(),
            execute_time_us: Histogram::default(),
            queries: Counter::default(),
            slow_queries: Counter::default(),
            governor_kills: Counter::default(),
            faults_injected: Counter::default(),
            silent_corruptions: Counter::default(),
            statements: Counter::default(),
            statement_errors: Counter::default(),
            wal_records_written: Counter::default(),
            wal_bytes: Counter::default(),
            checkpoints: Counter::default(),
            recoveries: Counter::default(),
            recovery_replayed_records: Counter::default(),
            wal_coalesced_syncs: Counter::default(),
            // Contention waits resolve sub-50µs mass: finer bounds.
            commit_lock_wait_us: Histogram::new(WAIT_BUCKETS_US),
            wal_sync_wait_us: Histogram::new(WAIT_BUCKETS_US),
            pool_miss_io_us: Histogram::new(WAIT_BUCKETS_US),
            pool_load_wait_us: Histogram::new(WAIT_BUCKETS_US),
            snapshot_acquire_us: Histogram::new(WAIT_BUCKETS_US),
        }
    }
}

impl EngineMetrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            pool_evictions: self.pool_evictions.get(),
            pool_retries: self.pool_retries.get(),
            pool_corruptions: self.pool_corruptions.get(),
            disk_reads: self.disk_reads.get(),
            disk_writes: self.disk_writes.get(),
            optimize_calls: self.optimize_calls.get(),
            plans_considered: self.plans_considered.get(),
            plans_pruned: self.plans_pruned.get(),
            optimize_time_us: self.optimize_time_us.snapshot(),
            plans_verified: self.plans_verified.get(),
            verify_failures: self.verify_failures.get(),
            lints_flagged: self.lints_flagged.get(),
            exec_batches: self.exec_batches.get(),
            exec_rows: self.exec_rows.get(),
            exec_spills: self.exec_spills.get(),
            execute_time_us: self.execute_time_us.snapshot(),
            queries: self.queries.get(),
            slow_queries: self.slow_queries.get(),
            governor_kills: self.governor_kills.get(),
            faults_injected: self.faults_injected.get(),
            silent_corruptions: self.silent_corruptions.get(),
            statements: self.statements.get(),
            statement_errors: self.statement_errors.get(),
            wal_records_written: self.wal_records_written.get(),
            wal_bytes: self.wal_bytes.get(),
            checkpoints: self.checkpoints.get(),
            recoveries: self.recoveries.get(),
            recovery_replayed_records: self.recovery_replayed_records.get(),
            wal_coalesced_syncs: self.wal_coalesced_syncs.get(),
            commit_lock_wait_us: self.commit_lock_wait_us.snapshot(),
            wal_sync_wait_us: self.wal_sync_wait_us.snapshot(),
            pool_miss_io_us: self.pool_miss_io_us.snapshot(),
            pool_load_wait_us: self.pool_load_wait_us.snapshot(),
            snapshot_acquire_us: self.snapshot_acquire_us.snapshot(),
        }
    }
}

/// A point-in-time copy of every engine metric, renderable as a
/// Prometheus-style text dump.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_evictions: u64,
    pub pool_retries: u64,
    pub pool_corruptions: u64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub optimize_calls: u64,
    pub plans_considered: u64,
    pub plans_pruned: u64,
    pub optimize_time_us: HistogramSnapshot,
    pub plans_verified: u64,
    pub verify_failures: u64,
    pub lints_flagged: u64,
    pub exec_batches: u64,
    pub exec_rows: u64,
    pub exec_spills: u64,
    pub execute_time_us: HistogramSnapshot,
    pub queries: u64,
    pub slow_queries: u64,
    pub governor_kills: u64,
    pub faults_injected: u64,
    pub silent_corruptions: u64,
    pub statements: u64,
    pub statement_errors: u64,
    pub wal_records_written: u64,
    pub wal_bytes: u64,
    pub checkpoints: u64,
    pub recoveries: u64,
    pub recovery_replayed_records: u64,
    pub wal_coalesced_syncs: u64,
    pub commit_lock_wait_us: HistogramSnapshot,
    pub wal_sync_wait_us: HistogramSnapshot,
    pub pool_miss_io_us: HistogramSnapshot,
    pub pool_load_wait_us: HistogramSnapshot,
    pub snapshot_acquire_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Buffer-pool hit rate over the captured window.
    pub fn hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Prometheus text exposition of every metric, `evopt_`-prefixed.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled("")
    }

    /// Prometheus text exposition with an extra label set merged into
    /// every series (e.g. `session="3"` for a per-session registry dump).
    /// Empty `labels` renders bare series.
    pub fn to_prometheus_labeled(&self, labels: &str) -> String {
        let mut out = String::new();
        let counters = [
            ("evopt_pool_hits_total", self.pool_hits),
            ("evopt_pool_misses_total", self.pool_misses),
            ("evopt_pool_evictions_total", self.pool_evictions),
            ("evopt_pool_checksum_retries_total", self.pool_retries),
            ("evopt_pool_corruptions_total", self.pool_corruptions),
            ("evopt_disk_reads_total", self.disk_reads),
            ("evopt_disk_writes_total", self.disk_writes),
            ("evopt_optimize_calls_total", self.optimize_calls),
            ("evopt_plans_considered_total", self.plans_considered),
            ("evopt_plans_pruned_total", self.plans_pruned),
            ("evopt_plans_verified_total", self.plans_verified),
            ("evopt_verify_failures_total", self.verify_failures),
            ("evopt_lints_flagged_total", self.lints_flagged),
            ("evopt_exec_batches_total", self.exec_batches),
            ("evopt_exec_rows_total", self.exec_rows),
            ("evopt_exec_spills_total", self.exec_spills),
            ("evopt_queries_total", self.queries),
            ("evopt_slow_queries_total", self.slow_queries),
            ("evopt_governor_kills_total", self.governor_kills),
            ("evopt_faults_injected_total", self.faults_injected),
            ("evopt_silent_corruptions_total", self.silent_corruptions),
            ("evopt_statements_total", self.statements),
            ("evopt_statement_errors_total", self.statement_errors),
            ("evopt_wal_records_written_total", self.wal_records_written),
            ("evopt_wal_bytes_total", self.wal_bytes),
            ("evopt_checkpoints_total", self.checkpoints),
            ("evopt_recoveries_total", self.recoveries),
            (
                "evopt_recovery_replayed_records_total",
                self.recovery_replayed_records,
            ),
            ("evopt_wal_coalesced_syncs_total", self.wal_coalesced_syncs),
        ];
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        for (name, v) in counters {
            out.push_str(&format!("# TYPE {name} counter\n{name}{suffix} {v}\n"));
        }
        // Contention families render unconditionally so a scraper sees
        // the series exist (at zero) before the first contended wait.
        let histograms: [(&str, &HistogramSnapshot); 7] = [
            ("evopt_optimize_time_us", &self.optimize_time_us),
            ("evopt_execute_time_us", &self.execute_time_us),
            ("evopt_commit_lock_wait_us", &self.commit_lock_wait_us),
            ("evopt_wal_sync_wait_us", &self.wal_sync_wait_us),
            ("evopt_pool_miss_io_us", &self.pool_miss_io_us),
            ("evopt_pool_load_wait_us", &self.pool_load_wait_us),
            ("evopt_snapshot_acquire_us", &self.snapshot_acquire_us),
        ];
        for (name, h) in histograms {
            h.render_prometheus_labeled(name, labels, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(17);
        assert_eq!(g.get(), 17);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // bucket 0
        h.observe(10); // bucket 0 (le is inclusive)
        h.observe(50); // bucket 1
        h.observe(1_000); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1_065);
        assert!((s.mean() - 266.25).abs() < 1e-9);
    }

    #[test]
    fn quantile_and_max_bounds() {
        let h = Histogram::new(&[10, 100]);
        let empty = h.snapshot();
        assert_eq!(empty.quantile_bound(0.5), None);
        assert_eq!(empty.max_bound(), None);

        h.observe(5);
        h.observe(8);
        h.observe(50);
        let s = h.snapshot();
        // 2 of 3 observations are ≤10: the median bound is 10.
        assert_eq!(s.quantile_bound(0.5), Some(10.0));
        assert_eq!(s.quantile_bound(1.0), Some(100.0));
        assert_eq!(s.max_bound(), Some(100.0));

        h.observe(1_000); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.max_bound(), Some(f64::INFINITY));
        assert_eq!(s.quantile_bound(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn prometheus_dump_is_cumulative_and_complete() {
        let m = EngineMetrics::default();
        m.pool_hits.add(3);
        m.queries.inc();
        m.optimize_time_us.observe(80);
        m.optimize_time_us.observe(9_999_999); // overflow bucket
        m.wal_records_written.add(7);
        m.recoveries.inc();
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("evopt_pool_hits_total 3"));
        assert!(text.contains("evopt_queries_total 1"));
        assert!(text.contains("evopt_wal_records_written_total 7"));
        assert!(text.contains("evopt_recoveries_total 1"));
        assert!(text.contains("evopt_optimize_time_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("evopt_optimize_time_us_count 2"));
        // Buckets are cumulative: the le="100" bucket already holds the 80µs
        // observation.
        assert!(text.contains("evopt_optimize_time_us_bucket{le=\"100\"} 1"));
    }

    #[test]
    fn histogram_is_monotone_under_concurrent_observers() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(WAIT_BUCKETS_US));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.observe(t * 100 + i % 97);
                    }
                })
            })
            .collect();
        // Read while the writers race: count must only grow. (Bucket sums
        // may transiently lag `count` — bucket and count are separate
        // relaxed atomics — but must never exceed it by the end.)
        let mut last = 0u64;
        for _ in 0..1_000 {
            let s = h.snapshot();
            assert!(s.count >= last, "count went backwards");
            last = s.count;
            std::thread::yield_now();
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 20_000);
        // Prometheus cumulative rendering ends at the total count.
        let mut out = String::new();
        s.render_prometheus_labeled("t_us", "", &mut out);
        assert!(out.contains("t_us_bucket{le=\"+Inf\"} 20000"), "{out}");
        assert!(out.contains("t_us_count 20000"), "{out}");
    }

    #[test]
    fn labeled_rendering_merges_label_sets() {
        let h = Histogram::new(&[10]);
        h.observe(3);
        let mut out = String::new();
        h.snapshot()
            .render_prometheus_labeled("t_us", "session=\"7\"", &mut out);
        assert!(
            out.contains("t_us_bucket{le=\"10\",session=\"7\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("t_us_bucket{le=\"+Inf\",session=\"7\"} 1"),
            "{out}"
        );
        assert!(out.contains("t_us_sum{session=\"7\"} 3"), "{out}");
        assert!(out.contains("t_us_count{session=\"7\"} 1"), "{out}");
    }

    #[test]
    fn contention_families_render_even_when_empty() {
        let text = EngineMetrics::default().snapshot().to_prometheus();
        for family in [
            "evopt_commit_lock_wait_us",
            "evopt_wal_sync_wait_us",
            "evopt_pool_miss_io_us",
            "evopt_pool_load_wait_us",
            "evopt_snapshot_acquire_us",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} histogram")),
                "missing {family}"
            );
            assert!(text.contains(&format!("{family}_count 0")), "{family}");
        }
    }

    #[test]
    fn hit_rate_handles_empty_window() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = MetricsSnapshot {
            pool_hits: 3,
            pool_misses: 1,
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }
}
