//! Lock-light metrics registry: atomic counters, gauges and fixed-bucket
//! histograms, plus the [`EngineMetrics`] bundle the engine records into.
//!
//! Everything here is a relaxed atomic — no locks, no allocation on the
//! hot path — so the executor and buffer pool can record per-batch and
//! per-query without measurable overhead (EXPERIMENTS.md O2 pins the
//! budget at ≤5% on the execution sweep).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Upper bounds (µs) for latency histograms: 50µs … 1s, then +Inf.
pub const TIME_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000,
];

/// A fixed-bucket histogram: one atomic per bucket plus sum and count.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` buckets; the last is the +Inf overflow.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self.buckets.iter().map(|b| b.load(Relaxed)).collect(),
            sum: self.sum.load(Relaxed),
            count: self.count.load(Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(TIME_BUCKETS_US)
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn render_prometheus(&self, name: &str, out: &mut String) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c;
            let le = match self.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", self.sum));
        out.push_str(&format!("{name}_count {}\n", self.count));
    }
}

/// The engine-wide registry: every counter the engine records, one field
/// per metric. `Database` holds one per instance and mirrors its
/// engine-level recordings into [`crate::global`].
///
/// The `pool_*`/`disk_*` fields accumulate *query-path deltas* (pages
/// touched by queries the engine measured). A per-database
/// `metrics_snapshot()` overwrites those with live buffer-pool totals —
/// authoritative, and inclusive of DDL/ANALYZE traffic — while the global
/// aggregate reports the accumulated deltas across every database.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    // -- storage (query-path deltas; see type docs) -------------------------
    pub pool_hits: Counter,
    pub pool_misses: Counter,
    pub pool_evictions: Counter,
    pub pool_retries: Counter,
    pub pool_corruptions: Counter,
    pub disk_reads: Counter,
    pub disk_writes: Counter,
    // -- optimizer ----------------------------------------------------------
    pub optimize_calls: Counter,
    pub plans_considered: Counter,
    pub plans_pruned: Counter,
    pub optimize_time_us: Histogram,
    // -- static plan verification -------------------------------------------
    pub plans_verified: Counter,
    pub verify_failures: Counter,
    pub lints_flagged: Counter,
    // -- executor -----------------------------------------------------------
    pub exec_batches: Counter,
    pub exec_rows: Counter,
    pub exec_spills: Counter,
    pub execute_time_us: Histogram,
    // -- engine -------------------------------------------------------------
    pub queries: Counter,
    pub slow_queries: Counter,
    pub governor_kills: Counter,
    pub faults_injected: Counter,
    pub silent_corruptions: Counter,
    // -- durability (WAL; zero when durability is off) ----------------------
    pub wal_records_written: Counter,
    pub wal_bytes: Counter,
    pub checkpoints: Counter,
    pub recoveries: Counter,
    pub recovery_replayed_records: Counter,
}

impl EngineMetrics {
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            pool_evictions: self.pool_evictions.get(),
            pool_retries: self.pool_retries.get(),
            pool_corruptions: self.pool_corruptions.get(),
            disk_reads: self.disk_reads.get(),
            disk_writes: self.disk_writes.get(),
            optimize_calls: self.optimize_calls.get(),
            plans_considered: self.plans_considered.get(),
            plans_pruned: self.plans_pruned.get(),
            optimize_time_us: self.optimize_time_us.snapshot(),
            plans_verified: self.plans_verified.get(),
            verify_failures: self.verify_failures.get(),
            lints_flagged: self.lints_flagged.get(),
            exec_batches: self.exec_batches.get(),
            exec_rows: self.exec_rows.get(),
            exec_spills: self.exec_spills.get(),
            execute_time_us: self.execute_time_us.snapshot(),
            queries: self.queries.get(),
            slow_queries: self.slow_queries.get(),
            governor_kills: self.governor_kills.get(),
            faults_injected: self.faults_injected.get(),
            silent_corruptions: self.silent_corruptions.get(),
            wal_records_written: self.wal_records_written.get(),
            wal_bytes: self.wal_bytes.get(),
            checkpoints: self.checkpoints.get(),
            recoveries: self.recoveries.get(),
            recovery_replayed_records: self.recovery_replayed_records.get(),
        }
    }
}

/// A point-in-time copy of every engine metric, renderable as a
/// Prometheus-style text dump.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_evictions: u64,
    pub pool_retries: u64,
    pub pool_corruptions: u64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub optimize_calls: u64,
    pub plans_considered: u64,
    pub plans_pruned: u64,
    pub optimize_time_us: HistogramSnapshot,
    pub plans_verified: u64,
    pub verify_failures: u64,
    pub lints_flagged: u64,
    pub exec_batches: u64,
    pub exec_rows: u64,
    pub exec_spills: u64,
    pub execute_time_us: HistogramSnapshot,
    pub queries: u64,
    pub slow_queries: u64,
    pub governor_kills: u64,
    pub faults_injected: u64,
    pub silent_corruptions: u64,
    pub wal_records_written: u64,
    pub wal_bytes: u64,
    pub checkpoints: u64,
    pub recoveries: u64,
    pub recovery_replayed_records: u64,
}

impl MetricsSnapshot {
    /// Buffer-pool hit rate over the captured window.
    pub fn hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Prometheus text exposition of every metric, `evopt_`-prefixed.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let counters = [
            ("evopt_pool_hits_total", self.pool_hits),
            ("evopt_pool_misses_total", self.pool_misses),
            ("evopt_pool_evictions_total", self.pool_evictions),
            ("evopt_pool_checksum_retries_total", self.pool_retries),
            ("evopt_pool_corruptions_total", self.pool_corruptions),
            ("evopt_disk_reads_total", self.disk_reads),
            ("evopt_disk_writes_total", self.disk_writes),
            ("evopt_optimize_calls_total", self.optimize_calls),
            ("evopt_plans_considered_total", self.plans_considered),
            ("evopt_plans_pruned_total", self.plans_pruned),
            ("evopt_plans_verified_total", self.plans_verified),
            ("evopt_verify_failures_total", self.verify_failures),
            ("evopt_lints_flagged_total", self.lints_flagged),
            ("evopt_exec_batches_total", self.exec_batches),
            ("evopt_exec_rows_total", self.exec_rows),
            ("evopt_exec_spills_total", self.exec_spills),
            ("evopt_queries_total", self.queries),
            ("evopt_slow_queries_total", self.slow_queries),
            ("evopt_governor_kills_total", self.governor_kills),
            ("evopt_faults_injected_total", self.faults_injected),
            ("evopt_silent_corruptions_total", self.silent_corruptions),
            ("evopt_wal_records_written_total", self.wal_records_written),
            ("evopt_wal_bytes_total", self.wal_bytes),
            ("evopt_checkpoints_total", self.checkpoints),
            ("evopt_recoveries_total", self.recoveries),
            (
                "evopt_recovery_replayed_records_total",
                self.recovery_replayed_records,
            ),
        ];
        for (name, v) in counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        self.optimize_time_us
            .render_prometheus("evopt_optimize_time_us", &mut out);
        self.execute_time_us
            .render_prometheus("evopt_execute_time_us", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(17);
        assert_eq!(g.get(), 17);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5); // bucket 0
        h.observe(10); // bucket 0 (le is inclusive)
        h.observe(50); // bucket 1
        h.observe(1_000); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1_065);
        assert!((s.mean() - 266.25).abs() < 1e-9);
    }

    #[test]
    fn prometheus_dump_is_cumulative_and_complete() {
        let m = EngineMetrics::default();
        m.pool_hits.add(3);
        m.queries.inc();
        m.optimize_time_us.observe(80);
        m.optimize_time_us.observe(9_999_999); // overflow bucket
        m.wal_records_written.add(7);
        m.recoveries.inc();
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("evopt_pool_hits_total 3"));
        assert!(text.contains("evopt_queries_total 1"));
        assert!(text.contains("evopt_wal_records_written_total 7"));
        assert!(text.contains("evopt_recoveries_total 1"));
        assert!(text.contains("evopt_optimize_time_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("evopt_optimize_time_us_count 2"));
        // Buckets are cumulative: the le="100" bucket already holds the 80µs
        // observation.
        assert!(text.contains("evopt_optimize_time_us_bucket{le=\"100\"} 1"));
    }

    #[test]
    fn hit_rate_handles_empty_window() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = MetricsSnapshot {
            pool_hits: 3,
            pool_misses: 1,
            ..MetricsSnapshot::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }
}
