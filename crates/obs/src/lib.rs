//! # evopt-obs
//!
//! The observability substrate for evopt, four independent pieces:
//!
//! * [`trace`] — a bounded, interior-mutable [`trace::TraceSink`] the join
//!   enumerators record *search* events into (plan considered, pruned and
//!   by whom, interesting order kept, per-level table growth), frozen into
//!   a [`trace::SearchTrace`] that `EXPLAIN TRACE` renders as a journal;
//! * [`metrics`] — a lock-light registry of atomic [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s and fixed-bucket [`metrics::Histogram`]s, grouped
//!   into the engine-wide [`metrics::EngineMetrics`] instance that backs
//!   `Database::metrics_snapshot()` and the Prometheus-style
//!   `Database::metrics_text()` dump;
//! * [`query_log`] — a ring buffer of per-query [`query_log::QueryLogEntry`]
//!   records (SQL, plan digest, est/actual rows, q-error, optimize/execute
//!   wall time, page I/O, session attribution, phase span) with a
//!   slow-query threshold, surfaced as the virtual statement
//!   `SHOW QUERY LOG`;
//! * [`span`] — the hierarchical [`span::StatementSpan`] phase trace
//!   (parse → bind → optimize → verify → execute → commit) the engine
//!   assembles per statement and `EXPLAIN ANALYZE` renders as a
//!   phase-breakdown table.
//!
//! This crate deliberately depends on nothing above `evopt-common`'s level
//! (in fact on nothing but the vendored `parking_lot`): trace events carry
//! plain masks and cost components, so every layer of the engine can record
//! into it without dependency cycles.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod metrics;
pub mod query_log;
pub mod span;
pub mod trace;

pub use metrics::{
    Counter, EngineMetrics, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, TIME_BUCKETS_US,
    WAIT_BUCKETS_US,
};
pub use query_log::{QueryLog, QueryLogEntry, DEFAULT_QUERY_LOG_CAP, DEFAULT_SLOW_QUERY_US};
pub use span::{Phase, PhaseSpan, StatementSpan};
pub use trace::{PruneReason, SearchTrace, TraceEvent, TraceSink, DEFAULT_TRACE_EVENTS};

/// The process-wide [`EngineMetrics`] aggregate. Every `Database` records
/// its engine-level counters (queries, optimizer work, query-path pool
/// deltas) here *in addition* to its own instance, so long-lived tools —
/// the bench `report` binary in particular — can dump cumulative counters
/// across every database the process created.
pub fn global() -> &'static EngineMetrics {
    static GLOBAL: std::sync::OnceLock<EngineMetrics> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(EngineMetrics::default)
}
