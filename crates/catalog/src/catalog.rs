//! The catalog: tables, their storage, their indexes, their statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evopt_common::{EvoptError, Result, Schema};
use evopt_storage::{BTreeIndex, BufferPool, HeapFile, PageId};
use parking_lot::Mutex;

use crate::stats::TableStats;

/// A registered B+-tree index on one column of a table.
pub struct IndexInfo {
    /// Index name (unique per catalog).
    pub name: String,
    /// Owning table name.
    pub table: String,
    /// Column ordinal in the table schema the index keys on.
    pub column: usize,
    /// Whether the heap is physically ordered by this key (set by the
    /// engine when the load was sorted). A clustered range scan touches
    /// `sel × P(R)` heap pages; an unclustered one up to one page per match.
    pub clustered: bool,
    /// Whether keys are unique (the optimizer caps equality matches at 1).
    pub unique: bool,
    /// The tree itself.
    pub btree: Arc<BTreeIndex>,
}

/// A registered table: schema + heap + indexes + statistics.
pub struct TableInfo {
    pub id: u64,
    pub name: String,
    pub schema: Schema,
    pub heap: Arc<HeapFile>,
    indexes: Mutex<Vec<Arc<IndexInfo>>>,
    stats: Mutex<Option<Arc<TableStats>>>,
}

impl std::fmt::Debug for TableInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableInfo")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("schema", &self.schema)
            .finish()
    }
}

impl TableInfo {
    /// All indexes on this table.
    pub fn indexes(&self) -> Vec<Arc<IndexInfo>> {
        self.indexes.lock().clone()
    }

    /// Indexes keyed on `column`.
    pub fn indexes_on(&self, column: usize) -> Vec<Arc<IndexInfo>> {
        self.indexes
            .lock()
            .iter()
            .filter(|i| i.column == column)
            .cloned()
            .collect()
    }

    /// Statistics from the last ANALYZE, if any.
    pub fn stats(&self) -> Option<Arc<TableStats>> {
        self.stats.lock().clone()
    }

    /// Install fresh statistics (called by ANALYZE).
    pub fn set_stats(&self, stats: TableStats) {
        *self.stats.lock() = Some(Arc::new(stats));
    }

    fn add_index(&self, index: Arc<IndexInfo>) {
        self.indexes.lock().push(index);
    }
}

/// The namespace of tables and indexes. Thread-safe; shared via `Arc`.
pub struct Catalog {
    pool: Arc<BufferPool>,
    tables: Mutex<HashMap<String, Arc<TableInfo>>>,
    index_names: Mutex<HashMap<String, String>>, // index -> table
    next_id: AtomicU64,
}

impl Catalog {
    pub fn new(pool: Arc<BufferPool>) -> Catalog {
        Catalog {
            pool,
            tables: Mutex::new(HashMap::new()),
            index_names: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The buffer pool tables in this catalog allocate from.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create an empty table. Names are case-insensitive.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<TableInfo>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.lock();
        if tables.contains_key(&key) {
            return Err(EvoptError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let heap = Arc::new(HeapFile::create(Arc::clone(&self.pool))?);
        let schema = schema.with_qualifier(&key);
        let info = Arc::new(TableInfo {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            name: key.clone(),
            schema,
            heap,
            indexes: Mutex::new(Vec::new()),
            stats: Mutex::new(None),
        });
        tables.insert(key, Arc::clone(&info));
        Ok(info)
    }

    /// Drop a table and its indexes from the namespace. (Pages are not
    /// reclaimed — the simulated disk is monotonic; see evopt-storage.)
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let removed = self.tables.lock().remove(&key);
        match removed {
            Some(_) => {
                self.index_names.lock().retain(|_, t| t != &key);
                Ok(())
            }
            None => Err(EvoptError::Catalog(format!("unknown table '{name}'"))),
        }
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableInfo>> {
        self.tables
            .lock()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EvoptError::Catalog(format!("unknown table '{name}'")))
    }

    /// All tables, sorted by name (deterministic iteration for EXPLAIN etc).
    pub fn tables(&self) -> Vec<Arc<TableInfo>> {
        let mut v: Vec<_> = self.tables.lock().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Create a B+-tree index on `table_name.column_name` and bulk-build it
    /// from the current heap contents.
    pub fn create_index(
        &self,
        index_name: &str,
        table_name: &str,
        column_name: &str,
        unique: bool,
        clustered: bool,
    ) -> Result<Arc<IndexInfo>> {
        let ikey = index_name.to_ascii_lowercase();
        {
            let names = self.index_names.lock();
            if names.contains_key(&ikey) {
                return Err(EvoptError::Catalog(format!(
                    "index '{index_name}' already exists"
                )));
            }
        }
        let table = self.table(table_name)?;
        let column = table.schema.resolve(None, column_name).map_err(|_| {
            EvoptError::Catalog(format!(
                "unknown column '{column_name}' on table '{table_name}'"
            ))
        })?;
        let btree = Arc::new(BTreeIndex::create(Arc::clone(&self.pool))?);
        for item in table.heap.scan() {
            let (rid, tuple) = item?;
            let key = tuple.value(column)?;
            if !key.is_null() {
                btree.insert(key, rid)?;
            }
        }
        let info = Arc::new(IndexInfo {
            name: ikey.clone(),
            table: table.name.clone(),
            column,
            clustered,
            unique,
            btree,
        });
        table.add_index(Arc::clone(&info));
        self.index_names.lock().insert(ikey, table.name.clone());
        Ok(info)
    }

    /// Re-register a table whose pages already exist on disk (crash
    /// recovery): the heap is *opened* at `first_page`, not created.
    /// Statistics start empty — they are advisory and recovery re-ANALYZEs.
    pub fn restore_table(
        &self,
        name: &str,
        schema: Schema,
        first_page: PageId,
    ) -> Result<Arc<TableInfo>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.lock();
        if tables.contains_key(&key) {
            return Err(EvoptError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let heap = Arc::new(HeapFile::open(Arc::clone(&self.pool), first_page)?);
        let schema = schema.with_qualifier(&key);
        let info = Arc::new(TableInfo {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            name: key.clone(),
            schema,
            heap,
            indexes: Mutex::new(Vec::new()),
            stats: Mutex::new(None),
        });
        tables.insert(key, Arc::clone(&info));
        Ok(info)
    }

    /// Re-register an index whose B+-tree already exists on disk (crash
    /// recovery): the tree is *opened* at `meta_page`, not rebuilt, and the
    /// key column is given by ordinal (the recovered schema's order).
    pub fn restore_index(
        &self,
        index_name: &str,
        table_name: &str,
        column: usize,
        unique: bool,
        clustered: bool,
        meta_page: PageId,
    ) -> Result<Arc<IndexInfo>> {
        let ikey = index_name.to_ascii_lowercase();
        {
            let names = self.index_names.lock();
            if names.contains_key(&ikey) {
                return Err(EvoptError::Catalog(format!(
                    "index '{index_name}' already exists"
                )));
            }
        }
        let table = self.table(table_name)?;
        if column >= table.schema.columns().len() {
            return Err(EvoptError::Catalog(format!(
                "index '{index_name}' keys on column {column} but table '{table_name}' has {}",
                table.schema.columns().len()
            )));
        }
        let btree = Arc::new(BTreeIndex::open(Arc::clone(&self.pool), meta_page)?);
        let info = Arc::new(IndexInfo {
            name: ikey.clone(),
            table: table.name.clone(),
            column,
            clustered,
            unique,
            btree,
        });
        table.add_index(Arc::clone(&info));
        self.index_names.lock().insert(ikey, table.name.clone());
        Ok(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evopt_common::{Column, DataType, Tuple, Value};
    use evopt_storage::{DiskManager, PolicyKind};

    fn mkcatalog() -> Catalog {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        Catalog::new(pool)
    }

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("name", DataType::Str),
        ])
    }

    #[test]
    fn create_and_lookup_table() {
        let cat = mkcatalog();
        let t = cat.create_table("Users", two_col_schema()).unwrap();
        assert_eq!(t.name, "users");
        // Case-insensitive lookup, schema qualified with table name.
        let got = cat.table("USERS").unwrap();
        assert_eq!(got.id, t.id);
        assert_eq!(got.schema.resolve(Some("users"), "id").unwrap(), 0);
    }

    #[test]
    fn duplicate_table_is_error() {
        let cat = mkcatalog();
        cat.create_table("t", two_col_schema()).unwrap();
        let e = cat.create_table("T", two_col_schema()).unwrap_err();
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn unknown_table_is_error() {
        let cat = mkcatalog();
        assert!(cat.table("nope").is_err());
        assert!(cat.drop_table("nope").is_err());
    }

    #[test]
    fn drop_table_removes_indexes_from_namespace() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Int(1), Value::Str("a".into())]))
            .unwrap();
        cat.create_index("idx_t_id", "t", "id", true, false)
            .unwrap();
        cat.drop_table("t").unwrap();
        // Index name is reusable after the drop.
        cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("idx_t_id", "t", "id", true, false)
            .unwrap();
    }

    #[test]
    fn index_build_covers_existing_rows() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        for i in 0..100 {
            t.heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("n{i}")),
                ]))
                .unwrap();
        }
        let idx = cat.create_index("idx", "t", "id", true, false).unwrap();
        assert_eq!(idx.btree.entry_count().unwrap(), 100);
        let hits = idx.btree.search_eq(&Value::Int(42)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            t.heap.get(hits[0]).unwrap().unwrap().value(0).unwrap(),
            &Value::Int(42)
        );
    }

    #[test]
    fn index_skips_nulls() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Null, Value::Str("x".into())]))
            .unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Int(1), Value::Str("y".into())]))
            .unwrap();
        let idx = cat.create_index("idx", "t", "id", false, false).unwrap();
        assert_eq!(idx.btree.entry_count().unwrap(), 1);
    }

    #[test]
    fn duplicate_index_name_and_bad_column_error() {
        let cat = mkcatalog();
        cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("i", "t", "id", false, false).unwrap();
        assert!(cat.create_index("I", "t", "name", false, false).is_err());
        assert!(cat.create_index("j", "t", "nope", false, false).is_err());
        assert!(cat
            .create_index("k", "missing", "id", false, false)
            .is_err());
    }

    #[test]
    fn indexes_on_filters_by_column() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("i_id", "t", "id", false, false).unwrap();
        cat.create_index("i_name", "t", "name", false, false)
            .unwrap();
        assert_eq!(t.indexes().len(), 2);
        assert_eq!(t.indexes_on(0).len(), 1);
        assert_eq!(t.indexes_on(0)[0].name, "i_id");
        assert_eq!(t.indexes_on(1)[0].name, "i_name");
    }

    #[test]
    fn stats_roundtrip() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        assert!(t.stats().is_none());
        t.set_stats(TableStats {
            row_count: 5,
            ..Default::default()
        });
        assert_eq!(t.stats().unwrap().row_count, 5);
    }

    #[test]
    fn restore_reopens_existing_storage() {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        let cat = Catalog::new(Arc::clone(&pool));
        let t = cat.create_table("t", two_col_schema()).unwrap();
        for i in 0..50 {
            t.heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("n{i}")),
                ]))
                .unwrap();
        }
        let idx = cat.create_index("idx", "t", "id", true, false).unwrap();
        let (first_page, meta_page) = (t.heap.first_page(), idx.btree.meta_page());
        drop((t, idx));

        // A second catalog over the same pool: restore instead of create.
        let cat2 = Catalog::new(pool);
        let rt = cat2
            .restore_table("t", two_col_schema(), first_page)
            .unwrap();
        let ri = cat2
            .restore_index("idx", "t", 0, true, false, meta_page)
            .unwrap();
        assert_eq!(rt.heap.scan().count(), 50);
        assert_eq!(ri.btree.entry_count().unwrap(), 50);
        assert!(rt.stats().is_none(), "stats are not carried by restore");
        // Restored names occupy the namespace like created ones.
        assert!(cat2
            .restore_table("T", two_col_schema(), first_page)
            .is_err());
        assert!(cat2
            .restore_index("IDX", "t", 0, true, false, meta_page)
            .is_err());
        // Column ordinal out of range is typed.
        assert!(cat2
            .restore_index("idx2", "t", 9, false, false, meta_page)
            .is_err());
    }

    #[test]
    fn tables_listing_sorted() {
        let cat = mkcatalog();
        cat.create_table("zeta", two_col_schema()).unwrap();
        cat.create_table("alpha", two_col_schema()).unwrap();
        let names: Vec<_> = cat.tables().iter().map(|t| t.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
