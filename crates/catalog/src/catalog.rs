//! The catalog: tables, their storage, their indexes, their statistics.
//!
//! # Snapshots and copy-on-write
//!
//! The catalog is the root of every statement's view of the database, and
//! the multi-session engine lets DDL run concurrently with reads. Readers
//! therefore never plan against the live catalog: they take a
//! [`Catalog::snapshot`] — a cheap *frozen* clone of the two namespace maps
//! (table entries are shared `Arc<TableInfo>`s, so a snapshot costs one map
//! clone, not a data copy). The snapshot stays stable for the life of the
//! statement no matter what DDL commits after it.
//!
//! For that stability to hold, mutators never edit a published
//! `TableInfo` in place. `create_index`, `restore_index` and
//! [`Catalog::install_stats`] are **copy-on-write**: they build a fresh
//! `TableInfo` (sharing the heap `Arc`) with the updated index list or
//! stats slot and swap the map entry, so older snapshots keep the old
//! roots. `create_table`/`drop_table` only insert/remove map entries,
//! which cloned maps are immune to by construction.
//!
//! A monotone version counter stamps every successful mutation; snapshots
//! pin the version they were cut at. Frozen catalogs reject all mutators.
//!
//! Heap and index *pages* are shared storage — snapshot isolation here is
//! catalog-level (schemas, index lists, statistics), while row visibility
//! is read-committed at page granularity (see DESIGN.md §11.2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evopt_common::{lockorder, EvoptError, Result, Schema};
use evopt_storage::{BTreeIndex, BufferPool, HeapFile, PageId};
use parking_lot::Mutex;

use crate::stats::TableStats;

/// A registered B+-tree index on one column of a table.
pub struct IndexInfo {
    /// Index name (unique per catalog).
    pub name: String,
    /// Owning table name.
    pub table: String,
    /// Column ordinal in the table schema the index keys on.
    pub column: usize,
    /// Whether the heap is physically ordered by this key (set by the
    /// engine when the load was sorted). A clustered range scan touches
    /// `sel × P(R)` heap pages; an unclustered one up to one page per match.
    pub clustered: bool,
    /// Whether keys are unique (the optimizer caps equality matches at 1).
    pub unique: bool,
    /// The tree itself.
    pub btree: Arc<BTreeIndex>,
}

/// A registered table: schema + heap + indexes + statistics.
///
/// Published `TableInfo`s are immutable in spirit: catalog mutators replace
/// the whole entry (copy-on-write) rather than editing the index list or
/// stats slot of an `Arc` that snapshots may share. The interior mutexes
/// remain for the direct-embedding use case (tests and benches that drive a
/// bare `Catalog` with no snapshots in flight).
pub struct TableInfo {
    pub id: u64,
    pub name: String,
    pub schema: Schema,
    pub heap: Arc<HeapFile>,
    indexes: Mutex<Vec<Arc<IndexInfo>>>,
    stats: Mutex<Option<Arc<TableStats>>>,
}

impl std::fmt::Debug for TableInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableInfo")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("schema", &self.schema)
            .finish()
    }
}

impl TableInfo {
    /// All indexes on this table.
    pub fn indexes(&self) -> Vec<Arc<IndexInfo>> {
        let _r = lockorder::acquire(lockorder::TABLE_META);
        self.indexes.lock().clone()
    }

    /// Indexes keyed on `column`.
    pub fn indexes_on(&self, column: usize) -> Vec<Arc<IndexInfo>> {
        let _r = lockorder::acquire(lockorder::TABLE_META);
        self.indexes
            .lock()
            .iter()
            .filter(|i| i.column == column)
            .cloned()
            .collect()
    }

    /// Statistics from the last ANALYZE, if any.
    pub fn stats(&self) -> Option<Arc<TableStats>> {
        let _r = lockorder::acquire(lockorder::TABLE_META);
        self.stats.lock().clone()
    }

    /// Install fresh statistics in place. Direct-embedding convenience; the
    /// engine's ANALYZE goes through [`Catalog::install_stats`] instead so
    /// concurrent snapshots keep their stats view.
    pub fn set_stats(&self, stats: TableStats) {
        let _r = lockorder::acquire(lockorder::TABLE_META);
        *self.stats.lock() = Some(Arc::new(stats));
    }

    fn add_index(&self, index: Arc<IndexInfo>) {
        let _r = lockorder::acquire(lockorder::TABLE_META);
        self.indexes.lock().push(index);
    }

    /// Copy-on-write clone: same identity and storage roots, fresh metadata
    /// slots so mutating the clone leaves `self` (and any snapshot holding
    /// it) untouched.
    fn cow_clone(&self) -> TableInfo {
        let _r = lockorder::acquire(lockorder::TABLE_META);
        TableInfo {
            id: self.id,
            name: self.name.clone(),
            schema: self.schema.clone(),
            heap: Arc::clone(&self.heap),
            indexes: Mutex::new(self.indexes.lock().clone()),
            stats: Mutex::new(self.stats.lock().clone()),
        }
    }
}

/// The namespace of tables and indexes. Thread-safe; shared via `Arc`.
pub struct Catalog {
    pool: Arc<BufferPool>,
    tables: Mutex<HashMap<String, Arc<TableInfo>>>,
    index_names: Mutex<HashMap<String, String>>, // index -> table
    next_id: AtomicU64,
    /// Bumped on every successful mutation; snapshots pin the version they
    /// were cut at.
    version: AtomicU64,
    /// Frozen catalogs (snapshots) reject every mutator.
    frozen: bool,
}

impl Catalog {
    pub fn new(pool: Arc<BufferPool>) -> Catalog {
        Catalog {
            pool,
            tables: Mutex::new(HashMap::new()),
            index_names: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            version: AtomicU64::new(0),
            frozen: false,
        }
    }

    /// The buffer pool tables in this catalog allocate from.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The mutation counter: bumped once per successful DDL / stats install.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Whether this catalog is a frozen snapshot.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Cut a frozen, immutable view of the namespace as of now. Cheap: the
    /// two name maps are cloned; every `TableInfo` is shared by `Arc`.
    /// Copy-on-write mutators guarantee shared entries never change under
    /// the snapshot. The snapshot answers all read-side queries (`table`,
    /// `tables`, `pool`) and rejects every mutator.
    pub fn snapshot(&self) -> Arc<Catalog> {
        let _rt = lockorder::acquire(lockorder::CATALOG_MAP);
        let tables = self.tables.lock();
        let _rn = lockorder::acquire(lockorder::CATALOG_NAMES);
        let names = self.index_names.lock();
        Arc::new(Catalog {
            pool: Arc::clone(&self.pool),
            tables: Mutex::new(tables.clone()),
            index_names: Mutex::new(names.clone()),
            next_id: AtomicU64::new(self.next_id.load(Ordering::Relaxed)),
            version: AtomicU64::new(self.version.load(Ordering::SeqCst)),
            frozen: true,
        })
    }

    fn check_mutable(&self) -> Result<()> {
        if self.frozen {
            return Err(EvoptError::Catalog("catalog snapshot is read-only".into()));
        }
        Ok(())
    }

    /// Create an empty table. Names are case-insensitive.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<TableInfo>> {
        self.check_mutable()?;
        let key = name.to_ascii_lowercase();
        let _r = lockorder::acquire(lockorder::CATALOG_MAP);
        let mut tables = self.tables.lock();
        if tables.contains_key(&key) {
            return Err(EvoptError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let heap = Arc::new(HeapFile::create(Arc::clone(&self.pool))?);
        let schema = schema.with_qualifier(&key);
        let info = Arc::new(TableInfo {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            name: key.clone(),
            schema,
            heap,
            indexes: Mutex::new(Vec::new()),
            stats: Mutex::new(None),
        });
        tables.insert(key, Arc::clone(&info));
        self.version.fetch_add(1, Ordering::SeqCst);
        Ok(info)
    }

    /// Drop a table and its indexes from the namespace. (Pages are not
    /// reclaimed — the simulated disk is monotonic; see evopt-storage.)
    /// Snapshots cut earlier keep the table queryable.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.check_mutable()?;
        let key = name.to_ascii_lowercase();
        let _rt = lockorder::acquire(lockorder::CATALOG_MAP);
        let removed = self.tables.lock().remove(&key);
        match removed {
            Some(_) => {
                let _rn = lockorder::acquire(lockorder::CATALOG_NAMES);
                self.index_names.lock().retain(|_, t| t != &key);
                self.version.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
            None => Err(EvoptError::Catalog(format!("unknown table '{name}'"))),
        }
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableInfo>> {
        let _r = lockorder::acquire(lockorder::CATALOG_MAP);
        self.tables
            .lock()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EvoptError::Catalog(format!("unknown table '{name}'")))
    }

    /// All tables, sorted by name (deterministic iteration for EXPLAIN etc).
    pub fn tables(&self) -> Vec<Arc<TableInfo>> {
        let _r = lockorder::acquire(lockorder::CATALOG_MAP);
        let mut v: Vec<_> = self.tables.lock().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Create a B+-tree index on `table_name.column_name` and bulk-build it
    /// from the current heap contents. Copy-on-write: the table's entry is
    /// replaced with a clone carrying the extra index, so snapshots cut
    /// before the call never see it. (Callers racing writers must hold the
    /// engine commit lock — the bulk build scans the heap unlocked.)
    pub fn create_index(
        &self,
        index_name: &str,
        table_name: &str,
        column_name: &str,
        unique: bool,
        clustered: bool,
    ) -> Result<Arc<IndexInfo>> {
        self.check_mutable()?;
        let ikey = index_name.to_ascii_lowercase();
        {
            let _r = lockorder::acquire(lockorder::CATALOG_NAMES);
            let names = self.index_names.lock();
            if names.contains_key(&ikey) {
                return Err(EvoptError::Catalog(format!(
                    "index '{index_name}' already exists"
                )));
            }
        }
        let table = self.table(table_name)?;
        let column = table.schema.resolve(None, column_name).map_err(|_| {
            EvoptError::Catalog(format!(
                "unknown column '{column_name}' on table '{table_name}'"
            ))
        })?;
        let btree = Arc::new(BTreeIndex::create(Arc::clone(&self.pool))?);
        for item in table.heap.scan() {
            let (rid, tuple) = item?;
            let key = tuple.value(column)?;
            if !key.is_null() {
                btree.insert(key, rid)?;
            }
        }
        let info = Arc::new(IndexInfo {
            name: ikey.clone(),
            table: table.name.clone(),
            column,
            clustered,
            unique,
            btree,
        });
        self.publish_index(&table.name, Arc::clone(&info), ikey)?;
        Ok(info)
    }

    /// Swap in a copy-on-write table entry carrying `index` and claim its
    /// name, atomically with respect to `snapshot`.
    fn publish_index(&self, table_key: &str, index: Arc<IndexInfo>, ikey: String) -> Result<()> {
        let _rt = lockorder::acquire(lockorder::CATALOG_MAP);
        let mut tables = self.tables.lock();
        let _rn = lockorder::acquire(lockorder::CATALOG_NAMES);
        let mut names = self.index_names.lock();
        // Re-check both namespaces: the unlocked bulk build above raced no
        // writers (commit lock), but cheap defensive checks keep the maps
        // coherent even for direct embedders.
        let current = tables
            .get(table_key)
            .ok_or_else(|| EvoptError::Catalog(format!("unknown table '{table_key}'")))?;
        if names.contains_key(&ikey) {
            return Err(EvoptError::Catalog(format!(
                "index '{ikey}' already exists"
            )));
        }
        let cow = current.cow_clone();
        cow.add_index(index);
        tables.insert(table_key.to_string(), Arc::new(cow));
        names.insert(ikey, table_key.to_string());
        self.version.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Install fresh statistics for `table_name`, copy-on-write: the entry
    /// is replaced with a clone carrying the new stats, so snapshots cut
    /// before the call keep planning with the old ones. This is the
    /// engine's ANALYZE path; [`TableInfo::set_stats`] remains for direct
    /// embedders with no snapshots in flight.
    pub fn install_stats(&self, table_name: &str, stats: TableStats) -> Result<()> {
        self.check_mutable()?;
        let key = table_name.to_ascii_lowercase();
        let _r = lockorder::acquire(lockorder::CATALOG_MAP);
        let mut tables = self.tables.lock();
        let current = tables
            .get(&key)
            .ok_or_else(|| EvoptError::Catalog(format!("unknown table '{table_name}'")))?;
        let cow = current.cow_clone();
        cow.set_stats(stats);
        tables.insert(key, Arc::new(cow));
        self.version.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Re-register a table whose pages already exist on disk (crash
    /// recovery): the heap is *opened* at `first_page`, not created.
    /// Statistics start empty — they are advisory and recovery re-ANALYZEs.
    pub fn restore_table(
        &self,
        name: &str,
        schema: Schema,
        first_page: PageId,
    ) -> Result<Arc<TableInfo>> {
        self.check_mutable()?;
        let key = name.to_ascii_lowercase();
        let _r = lockorder::acquire(lockorder::CATALOG_MAP);
        let mut tables = self.tables.lock();
        if tables.contains_key(&key) {
            return Err(EvoptError::Catalog(format!(
                "table '{name}' already exists"
            )));
        }
        let heap = Arc::new(HeapFile::open(Arc::clone(&self.pool), first_page)?);
        let schema = schema.with_qualifier(&key);
        let info = Arc::new(TableInfo {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            name: key.clone(),
            schema,
            heap,
            indexes: Mutex::new(Vec::new()),
            stats: Mutex::new(None),
        });
        tables.insert(key, Arc::clone(&info));
        self.version.fetch_add(1, Ordering::SeqCst);
        Ok(info)
    }

    /// Re-register an index whose B+-tree already exists on disk (crash
    /// recovery): the tree is *opened* at `meta_page`, not rebuilt, and the
    /// key column is given by ordinal (the recovered schema's order).
    pub fn restore_index(
        &self,
        index_name: &str,
        table_name: &str,
        column: usize,
        unique: bool,
        clustered: bool,
        meta_page: PageId,
    ) -> Result<Arc<IndexInfo>> {
        self.check_mutable()?;
        let ikey = index_name.to_ascii_lowercase();
        {
            let _r = lockorder::acquire(lockorder::CATALOG_NAMES);
            let names = self.index_names.lock();
            if names.contains_key(&ikey) {
                return Err(EvoptError::Catalog(format!(
                    "index '{index_name}' already exists"
                )));
            }
        }
        let table = self.table(table_name)?;
        if column >= table.schema.columns().len() {
            return Err(EvoptError::Catalog(format!(
                "index '{index_name}' keys on column {column} but table '{table_name}' has {}",
                table.schema.columns().len()
            )));
        }
        let btree = Arc::new(BTreeIndex::open(Arc::clone(&self.pool), meta_page)?);
        let info = Arc::new(IndexInfo {
            name: ikey.clone(),
            table: table.name.clone(),
            column,
            clustered,
            unique,
            btree,
        });
        self.publish_index(&table.name, Arc::clone(&info), ikey)?;
        Ok(info)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evopt_common::{Column, DataType, Tuple, Value};
    use evopt_storage::{DiskManager, PolicyKind};

    fn mkcatalog() -> Catalog {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        Catalog::new(pool)
    }

    fn two_col_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("name", DataType::Str),
        ])
    }

    #[test]
    fn create_and_lookup_table() {
        let cat = mkcatalog();
        let t = cat.create_table("Users", two_col_schema()).unwrap();
        assert_eq!(t.name, "users");
        // Case-insensitive lookup, schema qualified with table name.
        let got = cat.table("USERS").unwrap();
        assert_eq!(got.id, t.id);
        assert_eq!(got.schema.resolve(Some("users"), "id").unwrap(), 0);
    }

    #[test]
    fn duplicate_table_is_error() {
        let cat = mkcatalog();
        cat.create_table("t", two_col_schema()).unwrap();
        let e = cat.create_table("T", two_col_schema()).unwrap_err();
        assert_eq!(e.kind(), "catalog");
    }

    #[test]
    fn unknown_table_is_error() {
        let cat = mkcatalog();
        assert!(cat.table("nope").is_err());
        assert!(cat.drop_table("nope").is_err());
    }

    #[test]
    fn drop_table_removes_indexes_from_namespace() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Int(1), Value::Str("a".into())]))
            .unwrap();
        cat.create_index("idx_t_id", "t", "id", true, false)
            .unwrap();
        cat.drop_table("t").unwrap();
        // Index name is reusable after the drop.
        cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("idx_t_id", "t", "id", true, false)
            .unwrap();
    }

    #[test]
    fn index_build_covers_existing_rows() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        for i in 0..100 {
            t.heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("n{i}")),
                ]))
                .unwrap();
        }
        let idx = cat.create_index("idx", "t", "id", true, false).unwrap();
        assert_eq!(idx.btree.entry_count().unwrap(), 100);
        let hits = idx.btree.search_eq(&Value::Int(42)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(
            t.heap.get(hits[0]).unwrap().unwrap().value(0).unwrap(),
            &Value::Int(42)
        );
    }

    #[test]
    fn index_skips_nulls() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Null, Value::Str("x".into())]))
            .unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Int(1), Value::Str("y".into())]))
            .unwrap();
        let idx = cat.create_index("idx", "t", "id", false, false).unwrap();
        assert_eq!(idx.btree.entry_count().unwrap(), 1);
    }

    #[test]
    fn duplicate_index_name_and_bad_column_error() {
        let cat = mkcatalog();
        cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("i", "t", "id", false, false).unwrap();
        assert!(cat.create_index("I", "t", "name", false, false).is_err());
        assert!(cat.create_index("j", "t", "nope", false, false).is_err());
        assert!(cat
            .create_index("k", "missing", "id", false, false)
            .is_err());
    }

    #[test]
    fn indexes_on_filters_by_column() {
        let cat = mkcatalog();
        cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("i_id", "t", "id", false, false).unwrap();
        cat.create_index("i_name", "t", "name", false, false)
            .unwrap();
        // Index DDL is copy-on-write: re-fetch the entry to see the result.
        let t = cat.table("t").unwrap();
        assert_eq!(t.indexes().len(), 2);
        assert_eq!(t.indexes_on(0).len(), 1);
        assert_eq!(t.indexes_on(0)[0].name, "i_id");
        assert_eq!(t.indexes_on(1)[0].name, "i_name");
    }

    #[test]
    fn index_ddl_is_copy_on_write() {
        let cat = mkcatalog();
        let before = cat.create_table("t", two_col_schema()).unwrap();
        cat.create_index("i", "t", "id", false, false).unwrap();
        // The Arc held from before the DDL is untouched; the live entry
        // carries the index and shares the same heap.
        assert_eq!(before.indexes().len(), 0);
        let after = cat.table("t").unwrap();
        assert_eq!(after.indexes().len(), 1);
        assert_eq!(after.id, before.id);
        assert!(Arc::ptr_eq(&after.heap, &before.heap));
    }

    #[test]
    fn install_stats_is_copy_on_write() {
        let cat = mkcatalog();
        let before = cat.create_table("t", two_col_schema()).unwrap();
        cat.install_stats(
            "t",
            TableStats {
                row_count: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(before.stats().is_none());
        assert_eq!(cat.table("t").unwrap().stats().unwrap().row_count, 7);
        assert!(cat.install_stats("missing", TableStats::default()).is_err());
    }

    #[test]
    fn snapshot_is_stable_across_ddl() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        t.heap
            .insert(&Tuple::new(vec![Value::Int(1), Value::Str("a".into())]))
            .unwrap();
        let snap = cat.snapshot();
        let v = snap.version();

        cat.create_index("i", "t", "id", false, false).unwrap();
        cat.install_stats(
            "t",
            TableStats {
                row_count: 1,
                ..Default::default()
            },
        )
        .unwrap();
        cat.create_table("u", two_col_schema()).unwrap();
        cat.drop_table("t").unwrap();

        // The snapshot still sees the pre-DDL world: table 't' present with
        // no indexes and no stats, table 'u' absent, version pinned.
        let st = snap.table("t").unwrap();
        assert_eq!(st.indexes().len(), 0);
        assert!(st.stats().is_none());
        assert!(snap.table("u").is_err());
        assert_eq!(snap.version(), v);
        assert_eq!(st.heap.scan().count(), 1, "dropped table stays readable");

        // The live catalog moved on.
        assert!(cat.table("t").is_err());
        assert!(cat.table("u").is_ok());
        assert!(cat.version() > v);
    }

    #[test]
    fn snapshot_rejects_mutation() {
        let cat = mkcatalog();
        cat.create_table("t", two_col_schema()).unwrap();
        let snap = cat.snapshot();
        assert!(snap.is_frozen());
        assert!(snap.create_table("u", two_col_schema()).is_err());
        assert!(snap.drop_table("t").is_err());
        assert!(snap.create_index("i", "t", "id", false, false).is_err());
        assert!(snap.restore_table("u", two_col_schema(), 1).is_err());
        assert!(snap.restore_index("i", "t", 0, false, false, 1).is_err());
        assert!(snap.install_stats("t", TableStats::default()).is_err());
        // Reads still work.
        assert!(snap.table("t").is_ok());
        assert_eq!(snap.tables().len(), 1);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let cat = mkcatalog();
        let v0 = cat.version();
        cat.create_table("t", two_col_schema()).unwrap();
        let v1 = cat.version();
        assert!(v1 > v0);
        cat.create_index("i", "t", "id", false, false).unwrap();
        let v2 = cat.version();
        assert!(v2 > v1);
        cat.install_stats("t", TableStats::default()).unwrap();
        let v3 = cat.version();
        assert!(v3 > v2);
        cat.drop_table("t").unwrap();
        assert!(cat.version() > v3);
        // Failed mutations don't bump.
        let v = cat.version();
        assert!(cat.drop_table("t").is_err());
        assert_eq!(cat.version(), v);
    }

    #[test]
    fn stats_roundtrip() {
        let cat = mkcatalog();
        let t = cat.create_table("t", two_col_schema()).unwrap();
        assert!(t.stats().is_none());
        t.set_stats(TableStats {
            row_count: 5,
            ..Default::default()
        });
        assert_eq!(t.stats().unwrap().row_count, 5);
    }

    #[test]
    fn restore_reopens_existing_storage() {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        let cat = Catalog::new(Arc::clone(&pool));
        let t = cat.create_table("t", two_col_schema()).unwrap();
        for i in 0..50 {
            t.heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Str(format!("n{i}")),
                ]))
                .unwrap();
        }
        let idx = cat.create_index("idx", "t", "id", true, false).unwrap();
        let (first_page, meta_page) = (t.heap.first_page(), idx.btree.meta_page());
        drop((t, idx));

        // A second catalog over the same pool: restore instead of create.
        let cat2 = Catalog::new(pool);
        let rt = cat2
            .restore_table("t", two_col_schema(), first_page)
            .unwrap();
        let ri = cat2
            .restore_index("idx", "t", 0, true, false, meta_page)
            .unwrap();
        assert_eq!(rt.heap.scan().count(), 50);
        assert_eq!(ri.btree.entry_count().unwrap(), 50);
        assert!(rt.stats().is_none(), "stats are not carried by restore");
        // Restored names occupy the namespace like created ones.
        assert!(cat2
            .restore_table("T", two_col_schema(), first_page)
            .is_err());
        assert!(cat2
            .restore_index("IDX", "t", 0, true, false, meta_page)
            .is_err());
        // Column ordinal out of range is typed.
        assert!(cat2
            .restore_index("idx2", "t", 9, false, false, meta_page)
            .is_err());
    }

    #[test]
    fn tables_listing_sorted() {
        let cat = mkcatalog();
        cat.create_table("zeta", two_col_schema()).unwrap();
        cat.create_table("alpha", two_col_schema()).unwrap();
        let names: Vec<_> = cat.tables().iter().map(|t| t.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
