//! ANALYZE: build table statistics by scanning the heap.
//!
//! The pass makes one sequential scan, collecting per-column: null count,
//! exact NDV (hash set — exact, not sketched, at our laptop scale), min/max,
//! the most-common-value list, and a histogram for numeric columns.
//!
//! Experiment T3 runs this with varying [`AnalyzeConfig`]s (bucket counts,
//! histogram kinds) against skewed data to quantify estimation error.

use std::collections::HashMap;

use evopt_common::{Result, Value};

use crate::catalog::TableInfo;
use crate::histogram::Histogram;
use crate::stats::{ColumnStats, TableStats};

/// Which histogram variant ANALYZE builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// No histogram: estimation falls back to uniform 1/NDV and min–max
    /// interpolation — the pure 1977 rule set.
    None,
    EquiWidth,
    EquiDepth,
}

/// Tuning for the ANALYZE pass.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeConfig {
    pub histogram: HistogramKind,
    /// Buckets per histogram.
    pub buckets: usize,
    /// How many most-common values to keep per column (0 disables MCVs).
    pub mcv_count: usize,
    /// Keep an MCV only if it covers at least this fraction of rows.
    pub mcv_min_fraction: f64,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            histogram: HistogramKind::EquiDepth,
            buckets: 32,
            mcv_count: 8,
            mcv_min_fraction: 0.01,
        }
    }
}

/// Scan `table`'s heap and install fresh [`TableStats`] on it in place.
///
/// Returns the stats that were installed. Convenience for direct catalog
/// embedders; the engine's ANALYZE uses [`compute_stats`] +
/// `Catalog::install_stats` so concurrent snapshots keep their stats view.
pub fn analyze_table(table: &TableInfo, config: &AnalyzeConfig) -> Result<TableStats> {
    let stats = compute_stats(table, config)?;
    table.set_stats(stats.clone());
    Ok(stats)
}

/// Scan `table`'s heap and build fresh [`TableStats`] without installing
/// them anywhere.
pub fn compute_stats(table: &TableInfo, config: &AnalyzeConfig) -> Result<TableStats> {
    let ncols = table.schema.len();
    let mut row_count = 0u64;
    let mut total_bytes = 0u64;
    // Per-column accumulators.
    let mut nulls = vec![0u64; ncols];
    let mut freqs: Vec<HashMap<Value, u64>> = vec![HashMap::new(); ncols];
    let mut mins: Vec<Option<Value>> = vec![None; ncols];
    let mut maxs: Vec<Option<Value>> = vec![None; ncols];
    let mut numerics: Vec<Vec<f64>> = vec![Vec::new(); ncols];

    for item in table.heap.scan() {
        let (_, tuple) = item?;
        row_count += 1;
        total_bytes += tuple.encoded_len() as u64;
        for (i, v) in tuple.values().iter().enumerate() {
            if v.is_null() {
                nulls[i] += 1;
                continue;
            }
            *freqs[i].entry(v.clone()).or_insert(0) += 1;
            match &mins[i] {
                Some(m) if v >= m => {}
                _ => mins[i] = Some(v.clone()),
            }
            match &maxs[i] {
                Some(m) if v <= m => {}
                _ => maxs[i] = Some(v.clone()),
            }
            if let Some(x) = v.as_f64() {
                numerics[i].push(x);
            }
        }
    }

    let mut columns = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let ndv = freqs[i].len() as u64;
        // MCVs: top-k by frequency above the threshold.
        let mut mcvs: Vec<(Value, f64)> = Vec::new();
        if config.mcv_count > 0 && row_count > 0 {
            let mut by_freq: Vec<(&Value, &u64)> = freqs[i].iter().collect();
            by_freq.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            for (v, &count) in by_freq.into_iter().take(config.mcv_count) {
                let frac = count as f64 / row_count as f64;
                if frac >= config.mcv_min_fraction {
                    mcvs.push((v.clone(), frac));
                }
            }
        }
        let histogram = match config.histogram {
            HistogramKind::None => None,
            HistogramKind::EquiWidth => Histogram::equi_width(&numerics[i], config.buckets),
            HistogramKind::EquiDepth => Histogram::equi_depth(&numerics[i], config.buckets),
        };
        columns.push(ColumnStats {
            null_count: nulls[i],
            ndv,
            min: mins[i].take(),
            max: maxs[i].take(),
            mcvs,
            histogram,
        });
    }

    let stats = TableStats {
        row_count,
        page_count: table.heap.page_count(),
        avg_tuple_bytes: if row_count == 0 {
            0.0
        } else {
            total_bytes as f64 / row_count as f64
        },
        columns,
    };
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use evopt_common::{Column, DataType, Schema, Tuple};
    use evopt_storage::{BufferPool, DiskManager, PolicyKind};
    use std::sync::Arc;

    fn setup(rows: impl IntoIterator<Item = Tuple>) -> (Catalog, Arc<crate::catalog::TableInfo>) {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        let cat = Catalog::new(pool);
        let t = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("s", DataType::Str),
                ]),
            )
            .unwrap();
        for r in rows {
            t.heap.insert(&r).unwrap();
        }
        (cat, t)
    }

    fn row(a: Value, s: &str) -> Tuple {
        Tuple::new(vec![a, Value::Str(s.into())])
    }

    #[test]
    fn basic_counts_min_max_ndv() {
        let (_cat, t) = setup((0..100).map(|i| row(Value::Int(i % 10), "x")));
        let stats = analyze_table(&t, &AnalyzeConfig::default()).unwrap();
        assert_eq!(stats.row_count, 100);
        assert!(stats.page_count >= 1);
        assert!(stats.avg_tuple_bytes > 0.0);
        let a = &stats.columns[0];
        assert_eq!(a.ndv, 10);
        assert_eq!(a.min, Some(Value::Int(0)));
        assert_eq!(a.max, Some(Value::Int(9)));
        assert_eq!(a.null_count, 0);
        let s = &stats.columns[1];
        assert_eq!(s.ndv, 1);
        assert!(s.histogram.is_none(), "strings get no histogram");
        // Stats installed on the table.
        assert_eq!(t.stats().unwrap().row_count, 100);
    }

    #[test]
    fn null_counting_excludes_from_ndv_and_minmax() {
        let (_cat, t) = setup([
            row(Value::Null, "a"),
            row(Value::Int(5), "b"),
            row(Value::Null, "c"),
        ]);
        let stats = analyze_table(&t, &AnalyzeConfig::default()).unwrap();
        let a = &stats.columns[0];
        assert_eq!(a.null_count, 2);
        assert_eq!(a.ndv, 1);
        assert_eq!(a.min, Some(Value::Int(5)));
        assert_eq!(a.max, Some(Value::Int(5)));
        assert!((a.null_fraction(stats.row_count) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mcvs_capture_heavy_hitters_in_order() {
        // 60% value 1, 30% value 2, 10% spread.
        let rows = (0..100).map(|i| {
            let v = if i < 60 {
                1
            } else if i < 90 {
                2
            } else {
                10 + i
            };
            row(Value::Int(v), "x")
        });
        let (_cat, t) = setup(rows);
        let cfg = AnalyzeConfig {
            mcv_count: 2,
            mcv_min_fraction: 0.05,
            ..Default::default()
        };
        let stats = analyze_table(&t, &cfg).unwrap();
        let mcvs = &stats.columns[0].mcvs;
        assert_eq!(mcvs.len(), 2);
        assert_eq!(mcvs[0].0, Value::Int(1));
        assert!((mcvs[0].1 - 0.6).abs() < 1e-9);
        assert_eq!(mcvs[1].0, Value::Int(2));
    }

    #[test]
    fn mcv_threshold_filters_rare_values() {
        let (_cat, t) = setup((0..100).map(|i| row(Value::Int(i), "x")));
        let cfg = AnalyzeConfig {
            mcv_count: 8,
            mcv_min_fraction: 0.05, // every value is 1% — below threshold
            ..Default::default()
        };
        let stats = analyze_table(&t, &cfg).unwrap();
        assert!(stats.columns[0].mcvs.is_empty());
    }

    #[test]
    fn histogram_kinds() {
        let (_cat, t) = setup((0..1000).map(|i| row(Value::Int(i), "x")));
        for (kind, expect_some) in [
            (HistogramKind::None, false),
            (HistogramKind::EquiWidth, true),
            (HistogramKind::EquiDepth, true),
        ] {
            let cfg = AnalyzeConfig {
                histogram: kind,
                buckets: 16,
                ..Default::default()
            };
            let stats = analyze_table(&t, &cfg).unwrap();
            assert_eq!(stats.columns[0].histogram.is_some(), expect_some);
            if let Some(h) = &stats.columns[0].histogram {
                assert_eq!(h.total(), 1000);
            }
        }
    }

    #[test]
    fn empty_table() {
        let (_cat, t) = setup([]);
        let stats = analyze_table(&t, &AnalyzeConfig::default()).unwrap();
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.avg_tuple_bytes, 0.0);
        assert_eq!(stats.columns[0].ndv, 0);
        assert!(stats.columns[0].min.is_none());
    }

    #[test]
    fn tuples_per_page_sane() {
        let (_cat, t) = setup((0..5000).map(|i| row(Value::Int(i), "some name here")));
        let stats = analyze_table(&t, &AnalyzeConfig::default()).unwrap();
        let tpp = stats.tuples_per_page();
        // ~40-byte tuples in 4 KiB pages: expect on the order of 100/page.
        assert!(tpp > 20.0 && tpp < 400.0, "tuples/page = {tpp}");
    }
}
