//! Table- and column-level statistics.
//!
//! These are the inputs to every selectivity and cost formula in
//! `evopt-core`. They are built by [`crate::analyze`] and are immutable
//! snapshots — re-ANALYZE after loading to refresh.

use evopt_common::Value;

use crate::histogram::Histogram;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Rows where this column is NULL.
    pub null_count: u64,
    /// Exact number of distinct non-null values.
    pub ndv: u64,
    /// Smallest non-null value.
    pub min: Option<Value>,
    /// Largest non-null value.
    pub max: Option<Value>,
    /// Most common values with their fraction of all rows, most frequent
    /// first. Empty when the column has no notable heavy hitters.
    pub mcvs: Vec<(Value, f64)>,
    /// Value-distribution histogram (numeric columns only).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Fraction of rows that are NULL, given the table row count.
    pub fn null_fraction(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / row_count as f64
        }
    }

    /// The MCV entry for `v`, if tracked.
    pub fn mcv_fraction(&self, v: &Value) -> Option<f64> {
        self.mcvs
            .iter()
            .find(|(mv, _)| mv == v)
            .map(|(_, frac)| *frac)
    }

    /// Fraction of all rows covered by the MCV list.
    pub fn mcv_total_fraction(&self) -> f64 {
        self.mcvs.iter().map(|(_, f)| f).sum()
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Live rows at ANALYZE time.
    pub row_count: u64,
    /// Heap pages at ANALYZE time — `P(R)` in the cost formulas.
    pub page_count: u64,
    /// Mean encoded tuple size in bytes (sizes intermediate results).
    pub avg_tuple_bytes: f64,
    /// Per-column statistics, index-aligned with the table schema.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Column stats by ordinal (None when ANALYZE hasn't run or the ordinal
    /// is foreign).
    pub fn column(&self, idx: usize) -> Option<&ColumnStats> {
        self.columns.get(idx)
    }

    /// Estimated tuples per page (≥ 1).
    pub fn tuples_per_page(&self) -> f64 {
        if self.page_count == 0 {
            1.0
        } else {
            (self.row_count as f64 / self.page_count as f64).max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_fraction_handles_zero_rows() {
        let c = ColumnStats {
            null_count: 10,
            ..Default::default()
        };
        assert_eq!(c.null_fraction(0), 0.0);
        assert_eq!(c.null_fraction(100), 0.1);
    }

    #[test]
    fn mcv_lookup() {
        let c = ColumnStats {
            mcvs: vec![(Value::Int(1), 0.5), (Value::Int(2), 0.25)],
            ..Default::default()
        };
        assert_eq!(c.mcv_fraction(&Value::Int(1)), Some(0.5));
        assert_eq!(c.mcv_fraction(&Value::Int(3)), None);
        assert!((c.mcv_total_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tuples_per_page_floor() {
        let t = TableStats {
            row_count: 10,
            page_count: 100,
            ..Default::default()
        };
        assert_eq!(t.tuples_per_page(), 1.0);
        let t = TableStats {
            row_count: 1000,
            page_count: 10,
            ..Default::default()
        };
        assert_eq!(t.tuples_per_page(), 100.0);
    }
}
