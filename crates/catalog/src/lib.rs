//! # evopt-catalog
//!
//! Metadata and statistics: what the optimizer *knows* about the data.
//!
//! * [`catalog::Catalog`] — the namespace of tables and indexes, each table
//!   owning its heap file and any B+-tree indexes.
//! * [`stats`] — per-table and per-column statistics: row/page counts, null
//!   counts, exact NDV, min/max, most-common values, and value-distribution
//!   [`histogram`]s (equi-width and equi-depth).
//! * [`analyze`] — the `ANALYZE` pass that scans a table and builds those
//!   statistics.
//!
//! The statistics subsystem is half of the paper's story: cost-based
//! optimization is only as good as its cardinality estimates, and experiment
//! T3 measures exactly how estimate quality (q-error) depends on the
//! statistics kept here (no histogram vs. equi-width vs. equi-depth, under
//! uniform vs. skewed data).

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod analyze;
pub mod catalog;
pub mod histogram;
pub mod stats;

pub use analyze::{analyze_table, compute_stats, AnalyzeConfig, HistogramKind};
pub use catalog::{Catalog, IndexInfo, TableInfo};
pub use histogram::Histogram;
pub use stats::{ColumnStats, TableStats};
