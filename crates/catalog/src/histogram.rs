//! Value-distribution histograms for selectivity estimation.
//!
//! Two classic variants over numeric columns:
//!
//! * **Equi-width** — fixed-width buckets over `[min, max]`. Cheap, but
//!   skewed data piles into few buckets and estimates degrade.
//! * **Equi-depth** — bucket boundaries at quantiles, so each bucket holds
//!   (approximately) the same row count. Robust under skew; the variant
//!   every production optimizer converged on.
//!
//! Both support equality and range selectivity with intra-bucket uniformity
//! (continuous-value assumption) — the estimation error *within* a bucket is
//! exactly what experiment T3 quantifies.

use evopt_common::Value;

/// A histogram over one numeric column.
#[derive(Debug, Clone, PartialEq)]
pub enum Histogram {
    EquiWidth(EquiWidth),
    EquiDepth(EquiDepth),
}

impl Histogram {
    /// Build an equi-width histogram with `buckets` buckets.
    pub fn equi_width(values: &[f64], buckets: usize) -> Option<Histogram> {
        EquiWidth::build(values, buckets).map(Histogram::EquiWidth)
    }

    /// Build an equi-depth histogram with `buckets` buckets.
    pub fn equi_depth(values: &[f64], buckets: usize) -> Option<Histogram> {
        EquiDepth::build(values, buckets).map(Histogram::EquiDepth)
    }

    /// Estimated fraction of rows with `column = v` (of non-null rows).
    /// `ndv_hint` is the column's overall distinct count, used to spread a
    /// bucket's mass over the distinct values assumed inside it.
    pub fn selectivity_eq(&self, v: &Value, ndv_hint: u64) -> Option<f64> {
        let x = v.as_f64()?;
        Some(match self {
            Histogram::EquiWidth(h) => h.selectivity_eq(x, ndv_hint),
            Histogram::EquiDepth(h) => h.selectivity_eq(x, ndv_hint),
        })
    }

    /// Estimated fraction of rows with `lo <= column <= hi` (either bound
    /// optional; `None` = unbounded on that side). Bounds are inclusive —
    /// callers adjust for strict bounds via the equality selectivity.
    pub fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        match self {
            Histogram::EquiWidth(h) => h.selectivity_range(lo, hi),
            Histogram::EquiDepth(h) => h.selectivity_range(lo, hi),
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        match self {
            Histogram::EquiWidth(h) => h.counts.len(),
            Histogram::EquiDepth(h) => h.counts.len(),
        }
    }

    /// Total rows summarised.
    pub fn total(&self) -> u64 {
        match self {
            Histogram::EquiWidth(h) => h.total,
            Histogram::EquiDepth(h) => h.total,
        }
    }
}

/// Fixed-width buckets over `[min, max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidth {
    pub min: f64,
    pub max: f64,
    pub counts: Vec<u64>,
    pub total: u64,
}

impl EquiWidth {
    pub fn build(values: &[f64], buckets: usize) -> Option<EquiWidth> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !min.is_finite() || !max.is_finite() {
            return None;
        }
        let mut counts = vec![0u64; buckets];
        let width = (max - min) / buckets as f64;
        for &v in values {
            let idx = if width == 0.0 {
                0
            } else {
                (((v - min) / width) as usize).min(buckets - 1)
            };
            counts[idx] += 1;
        }
        Some(EquiWidth {
            min,
            max,
            counts,
            total: values.len() as u64,
        })
    }

    fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.max - self.min) / self.counts.len() as f64;
        (
            self.min + width * i as f64,
            self.min + width * (i + 1) as f64,
        )
    }

    fn selectivity_eq(&self, x: f64, ndv_hint: u64) -> f64 {
        if x < self.min || x > self.max || self.total == 0 {
            return 0.0;
        }
        let buckets = self.counts.len();
        let width = (self.max - self.min) / buckets as f64;
        let idx = if width == 0.0 {
            0
        } else {
            (((x - self.min) / width) as usize).min(buckets - 1)
        };
        let bucket_frac = self.counts[idx] as f64 / self.total as f64;
        // Assume distinct values spread evenly across buckets.
        let ndv_per_bucket = (ndv_hint as f64 / buckets as f64).max(1.0);
        (bucket_frac / ndv_per_bucket).min(1.0)
    }

    fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = lo.unwrap_or(f64::NEG_INFINITY);
        let hi = hi.unwrap_or(f64::INFINITY);
        if lo > hi {
            return 0.0;
        }
        let mut rows = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let (blo, bhi) = self.bucket_bounds(i);
            rows += c as f64 * overlap_fraction(blo, bhi, lo, hi);
        }
        (rows / self.total as f64).clamp(0.0, 1.0)
    }
}

/// Quantile-boundary buckets: each holds ~`total/buckets` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepth {
    /// `boundaries.len() == counts.len() + 1`; bucket `i` covers
    /// `[boundaries[i], boundaries[i+1]]` (last bucket inclusive on both
    /// ends).
    pub boundaries: Vec<f64>,
    pub counts: Vec<u64>,
    /// Distinct values observed in each bucket (for equality estimates).
    pub distincts: Vec<u64>,
    pub total: u64,
}

impl EquiDepth {
    pub fn build(values: &[f64], buckets: usize) -> Option<EquiDepth> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let buckets = buckets.min(n);
        // Boundary indices at quantiles; merge duplicate boundaries so a
        // heavy value doesn't create empty buckets.
        let mut boundaries = Vec::with_capacity(buckets + 1);
        let mut highest = sorted[0];
        boundaries.push(highest);
        for b in 1..buckets {
            let idx = (b * n / buckets).min(n - 1);
            let v = sorted[idx];
            if v > highest {
                boundaries.push(v);
                highest = v;
            }
        }
        let last = sorted[n - 1];
        if last > highest {
            boundaries.push(last);
        } else if boundaries.len() == 1 {
            // All values identical: one degenerate bucket.
            boundaries.push(last);
        }
        let nb = boundaries.len() - 1;
        let mut counts = vec![0u64; nb];
        let mut distinct_sets: Vec<Option<f64>> = vec![None; nb];
        let mut distincts = vec![0u64; nb];
        for &v in &sorted {
            let i = Self::bucket_of(&boundaries, v);
            counts[i] += 1;
            if distinct_sets[i] != Some(v) {
                distinct_sets[i] = Some(v);
                distincts[i] += 1;
            }
        }
        Some(EquiDepth {
            boundaries,
            counts,
            distincts,
            total: n as u64,
        })
    }

    fn bucket_of(boundaries: &[f64], v: f64) -> usize {
        // partition_point over bucket upper bounds; last bucket catches max.
        let nb = boundaries.len() - 1;
        for i in 0..nb {
            if v < boundaries[i + 1] {
                return i;
            }
        }
        nb - 1
    }

    fn selectivity_eq(&self, x: f64, _ndv_hint: u64) -> f64 {
        let (first, last) = match (self.boundaries.first(), self.boundaries.last()) {
            (Some(&first), Some(&last)) => (first, last),
            _ => return 0.0,
        };
        if x < first || x > last || self.total == 0 {
            return 0.0;
        }
        let i = Self::bucket_of(&self.boundaries, x);
        let bucket_frac = self.counts[i] as f64 / self.total as f64;
        (bucket_frac / self.distincts[i].max(1) as f64).min(1.0)
    }

    fn selectivity_range(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let lo = lo.unwrap_or(f64::NEG_INFINITY);
        let hi = hi.unwrap_or(f64::INFINITY);
        if lo > hi {
            return 0.0;
        }
        let mut rows = 0.0;
        for i in 0..self.counts.len() {
            let (blo, bhi) = (self.boundaries[i], self.boundaries[i + 1]);
            rows += self.counts[i] as f64 * overlap_fraction(blo, bhi, lo, hi);
        }
        (rows / self.total as f64).clamp(0.0, 1.0)
    }
}

/// Fraction of bucket `[blo, bhi]` covered by query range `[lo, hi]`,
/// assuming uniform distribution inside the bucket. Degenerate buckets
/// (single point) count fully iff the point is inside the range.
fn overlap_fraction(blo: f64, bhi: f64, lo: f64, hi: f64) -> f64 {
    if bhi <= blo {
        return if blo >= lo && blo <= hi { 1.0 } else { 0.0 };
    }
    let s = lo.max(blo);
    let e = hi.min(bhi);
    if e <= s {
        // Allow a closed-interval touch at the bucket edge to count as a
        // sliver rather than zero (keeps point-ranges inside a bucket > 0).
        if e == s && s >= blo && s <= bhi {
            return 0.0;
        }
        return 0.0;
    }
    (e - s) / (bhi - blo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn equi_width_uniform_range_estimates() {
        let h = Histogram::equi_width(&uniform(1000), 10).unwrap();
        // Half the domain → about half the rows.
        let s = h.selectivity_range(Some(0.0), Some(499.0));
        assert!((s - 0.5).abs() < 0.05, "got {s}");
        // Out-of-domain range → zero.
        assert_eq!(h.selectivity_range(Some(2000.0), Some(3000.0)), 0.0);
        // Full range → 1.
        assert!((h.selectivity_range(None, None) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equi_depth_uniform_range_estimates() {
        let h = Histogram::equi_depth(&uniform(1000), 10).unwrap();
        let s = h.selectivity_range(Some(250.0), Some(749.0));
        assert!((s - 0.5).abs() < 0.05, "got {s}");
        assert_eq!(h.bucket_count(), 10);
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn equality_estimates_near_true_frequency() {
        let vals = uniform(1000);
        for h in [
            Histogram::equi_width(&vals, 10).unwrap(),
            Histogram::equi_depth(&vals, 10).unwrap(),
        ] {
            let s = h.selectivity_eq(&Value::Int(500), 1000).unwrap();
            let truth = 1.0 / 1000.0;
            assert!(
                s > truth / 5.0 && s < truth * 5.0,
                "estimate {s} vs truth {truth}"
            );
            assert_eq!(h.selectivity_eq(&Value::Int(5000), 1000).unwrap(), 0.0);
        }
    }

    #[test]
    fn equi_depth_handles_heavy_skew_better_than_equi_width() {
        // 90% of rows are the value 0; the rest uniform on [1, 1000].
        let mut vals: Vec<f64> = vec![0.0; 9000];
        vals.extend((0..1000).map(|i| 1.0 + i as f64));
        let ndv = 1001u64;
        let truth_eq0 = 0.9;
        let ew = Histogram::equi_width(&vals, 10).unwrap();
        let ed = Histogram::equi_depth(&vals, 10).unwrap();
        let e_ew = ew.selectivity_eq(&Value::Int(0), ndv).unwrap();
        let e_ed = ed.selectivity_eq(&Value::Int(0), ndv).unwrap();
        let err = |e: f64| (e / truth_eq0).max(truth_eq0 / e.max(1e-12));
        assert!(
            err(e_ed) < err(e_ew),
            "equi-depth q-err {} should beat equi-width {}",
            err(e_ed),
            err(e_ew)
        );
        // Equi-depth puts the heavy hitter in its own narrow bucket(s).
        assert!(err(e_ed) < 2.0, "equi-depth q-error {}", err(e_ed));
    }

    #[test]
    fn all_identical_values() {
        let vals = vec![7.0; 100];
        for h in [
            Histogram::equi_width(&vals, 8).unwrap(),
            Histogram::equi_depth(&vals, 8).unwrap(),
        ] {
            let s = h.selectivity_eq(&Value::Int(7), 1).unwrap();
            assert!(s > 0.5, "heavy single value should estimate high, got {s}");
            assert_eq!(h.selectivity_eq(&Value::Int(8), 1).unwrap(), 0.0);
        }
    }

    #[test]
    fn empty_or_zero_buckets_return_none() {
        assert!(Histogram::equi_width(&[], 10).is_none());
        assert!(Histogram::equi_depth(&[], 10).is_none());
        assert!(Histogram::equi_width(&[1.0], 0).is_none());
        assert!(Histogram::equi_depth(&[1.0], 0).is_none());
    }

    #[test]
    fn non_numeric_eq_returns_none() {
        let h = Histogram::equi_width(&uniform(10), 2).unwrap();
        assert!(h.selectivity_eq(&Value::Str("x".into()), 10).is_none());
    }

    #[test]
    fn inverted_range_is_zero() {
        let h = Histogram::equi_depth(&uniform(100), 4).unwrap();
        assert_eq!(h.selectivity_range(Some(80.0), Some(20.0)), 0.0);
    }

    proptest! {
        /// Selectivities are always within [0, 1], and a superset range never
        /// has smaller selectivity (monotonicity).
        #[test]
        fn prop_range_monotone(
            values in prop::collection::vec(-1e6f64..1e6, 1..500),
            a in -1e6f64..1e6, b in -1e6f64..1e6,
            widen in 0.0f64..1e5,
            buckets in 1usize..64,
            depth in any::<bool>()) {
            let h = if depth {
                Histogram::equi_depth(&values, buckets).unwrap()
            } else {
                Histogram::equi_width(&values, buckets).unwrap()
            };
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let narrow = h.selectivity_range(Some(lo), Some(hi));
            let wide = h.selectivity_range(Some(lo - widen), Some(hi + widen));
            prop_assert!((0.0..=1.0).contains(&narrow));
            prop_assert!((0.0..=1.0).contains(&wide));
            prop_assert!(wide >= narrow - 1e-9, "wide {wide} < narrow {narrow}");
        }

        /// The full-range estimate over an equi-depth histogram recovers
        /// (close to) all rows.
        #[test]
        fn prop_full_range_is_total(
            values in prop::collection::vec(-1e3f64..1e3, 1..300),
            buckets in 1usize..32) {
            let h = Histogram::equi_depth(&values, buckets).unwrap();
            let s = h.selectivity_range(None, None);
            prop_assert!(s > 0.9, "full range estimated {s}");
        }
    }
}
