//! End-to-end wire-protocol tests: a real listener on an ephemeral port,
//! real TCP clients, concurrent sessions.

use std::sync::Arc;

use evopt_engine::{Database, DatabaseConfig, Durability};
use evopt_server::{serve, Client, Response, ServerConfig};

fn served(max_sessions: usize) -> (Arc<Database>, evopt_server::ServerHandle) {
    let db = Arc::new(Database::with_defaults());
    let handle = serve(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions },
    )
    .unwrap();
    (db, handle)
}

fn expect_result(resp: Response) -> String {
    match resp {
        Response::Result(text) => text,
        other => panic!("expected a result, got {other:?}"),
    }
}

#[test]
fn statements_roundtrip_over_the_wire() {
    let (_db, handle) = served(4);
    let mut c = Client::connect(handle.addr()).unwrap();
    expect_result(
        c.request("CREATE TABLE t (id INT NOT NULL, name STRING)")
            .unwrap(),
    );
    let text = expect_result(
        c.request("INSERT INTO t VALUES (1, 'ada'), (2, 'grace')")
            .unwrap(),
    );
    assert!(text.contains("2 row(s) affected"), "{text}");
    let text = expect_result(c.request("SELECT name FROM t WHERE id = 2").unwrap());
    assert!(text.contains("grace"), "{text}");
    // Errors come back tagged as errors, connection stays usable.
    match c.request("SELECT * FROM missing").unwrap() {
        Response::Error(e) => assert!(e.contains("missing"), "{e}"),
        other => panic!("{other:?}"),
    }
    let text = expect_result(c.request("SELECT COUNT(*) FROM t").unwrap());
    assert!(text.contains('2'), "{text}");
}

#[test]
fn writes_from_one_client_are_visible_to_another() {
    let (_db, handle) = served(4);
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    expect_result(a.request("CREATE TABLE shared (x INT)").unwrap());
    expect_result(a.request("INSERT INTO shared VALUES (7)").unwrap());
    let text = expect_result(b.request("SELECT x FROM shared").unwrap());
    assert!(text.contains('7'), "{text}");
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let (_db, handle) = served(8);
    let mut setup = Client::connect(handle.addr()).unwrap();
    expect_result(setup.request("CREATE TABLE n (v INT)").unwrap());
    expect_result(
        setup
            .request("INSERT INTO n VALUES (1), (2), (3), (4), (5)")
            .unwrap(),
    );
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..10 {
                    let text = expect_result(c.request("SELECT COUNT(*) FROM n").unwrap());
                    assert!(text.contains('5'), "{text}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn capacity_overflow_is_refused_with_bye() {
    let (_db, handle) = served(1);
    let mut first = Client::connect(handle.addr()).unwrap();
    // Ensure the first connection's slot is claimed before the second
    // connects.
    expect_result(first.request("\\help").unwrap());
    let mut second = Client::connect(handle.addr()).unwrap();
    match second.request("\\help") {
        Ok(Response::Bye(text)) => assert!(text.contains("capacity"), "{text}"),
        // The refused stream may already be closed by the time we write.
        Err(_) => {}
        Ok(other) => panic!("expected Bye, got {other:?}"),
    }
    // The first connection keeps working.
    match first.request("\\help").unwrap() {
        Response::Result(_) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn meta_commands_work_over_the_wire() {
    let (_db, handle) = served(2);
    let mut c = Client::connect(handle.addr()).unwrap();
    expect_result(c.request("CREATE TABLE m (x INT)").unwrap());
    let text = expect_result(c.request("\\tables").unwrap());
    assert!(text.contains('m'), "{text}");
    let text = expect_result(c.request("\\strategy greedy").unwrap());
    assert!(text.contains("greedy"), "{text}");
    match c.request("\\q").unwrap() {
        Response::Bye(_) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn metrics_frame_scrapes_prometheus_over_the_wire() {
    // A WAL-configured engine so the durability families carry real
    // observations, served over a real socket.
    let db = Arc::new(Database::new(DatabaseConfig {
        durability: Durability::Wal,
        ..Default::default()
    }));
    let handle = serve(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    expect_result(c.request("CREATE TABLE w (x INT NOT NULL)").unwrap());
    expect_result(c.request("INSERT INTO w VALUES (1), (2), (3)").unwrap());
    expect_result(c.request("SELECT COUNT(*) FROM w").unwrap());
    // The bare METRICS frame is the scrape entry point.
    let text = expect_result(c.request("METRICS").unwrap());
    for family in [
        // Server families lead the scrape.
        "evopt_server_active_sessions 1",
        "evopt_server_connections_total 1",
        "evopt_server_frames_total ",
        "evopt_server_bytes_in_total ",
        "evopt_server_bytes_out_total ",
        // Engine contention histograms over the wire.
        "evopt_commit_lock_wait_us_bucket{le=\"+Inf\"}",
        "evopt_wal_sync_wait_us_count ",
        "evopt_pool_miss_io_us_bucket",
        // Per-session series labeled with this connection's session.
        "evopt_statements_total{session=",
    ] {
        assert!(
            text.contains(family),
            "missing {family:?} in scrape:\n{text}"
        );
    }
    // The write ran on this connection: its commit was timed.
    let commit_count = text
        .lines()
        .find(|l| l.starts_with("evopt_commit_lock_wait_us_count "))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("commit wait count in scrape");
    assert!(commit_count >= 2, "CREATE + INSERT both commit: {text}");
    // `\metrics` is the same scrape.
    let meta = expect_result(c.request("\\metrics").unwrap());
    assert!(meta.contains("evopt_server_frames_total "), "{meta}");
}

#[test]
fn refused_connections_are_counted() {
    let (_db, handle) = served(1);
    let mut first = Client::connect(handle.addr()).unwrap();
    expect_result(first.request("\\help").unwrap());
    let mut second = Client::connect(handle.addr()).unwrap();
    let _ = second.request("\\help"); // refused with Bye (or reset)
                                      // The refusal is counted on the server side regardless of what the
                                      // client managed to read.
    let mut seen = 0;
    for _ in 0..50 {
        seen = handle.metrics().connections_refused.get();
        if seen >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(seen, 1, "exactly one refused connection");
    assert_eq!(handle.metrics().connections.get(), 1);
}

#[test]
fn quit_frees_the_session_slot() {
    let (_db, handle) = served(1);
    let mut first = Client::connect(handle.addr()).unwrap();
    match first.request("\\q").unwrap() {
        Response::Bye(_) => {}
        other => panic!("{other:?}"),
    }
    // The slot is released once the handler exits; retry briefly.
    let mut ok = false;
    for _ in 0..50 {
        let mut c = match Client::connect(handle.addr()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match c.request("\\help") {
            Ok(Response::Result(_)) => {
                ok = true;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    assert!(ok, "slot was never released after quit");
}

#[test]
fn top_waits_renders_contention_histograms_over_the_wire() {
    let (_db, handle) = served(4);
    let mut c = Client::connect(handle.addr()).unwrap();
    expect_result(c.request("CREATE TABLE w (x INT)").unwrap());
    for i in 0..5 {
        expect_result(c.request(&format!("INSERT INTO w VALUES ({i})")).unwrap());
    }
    expect_result(c.request("SELECT COUNT(*) FROM w").unwrap());

    // The meta command and the bare frame render identically.
    for query in ["\\top-waits", "TOPWAITS"] {
        let text = expect_result(c.request(query).unwrap());
        assert!(text.contains("family"), "{text}");
        for family in [
            "evopt_commit_lock_wait_us",
            "evopt_wal_sync_wait_us",
            "evopt_pool_miss_io_us",
            "evopt_pool_load_wait_us",
            "evopt_snapshot_acquire_us",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
        // Six writes took the commit lock, so that family has waits and
        // real p50/max bucket bounds (not the empty-histogram dash).
        let commit_row = text
            .lines()
            .find(|l| l.contains("evopt_commit_lock_wait_us"))
            .unwrap();
        let cols: Vec<&str> = commit_row.split_whitespace().collect();
        let waits: u64 = cols[1].parse().unwrap();
        assert!(waits >= 6, "expected >=6 commit-lock waits, got {waits}");
        assert_ne!(cols[3], "-", "p50 should be a bucket bound: {commit_row}");
        assert_ne!(cols[4], "-", "max should be a bucket bound: {commit_row}");
    }

    // Rows are sorted by total wait, descending.
    let text = expect_result(c.request("\\top-waits").unwrap());
    let totals: Vec<u64> = text
        .lines()
        .skip(1)
        .map(|l| l.split_whitespace().nth(2).unwrap().parse().unwrap())
        .collect();
    assert_eq!(totals.len(), 5);
    let mut sorted = totals.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(
        totals, sorted,
        "rows must be sorted by total_us desc:\n{text}"
    );
}
