//! End-to-end wire-protocol tests: a real listener on an ephemeral port,
//! real TCP clients, concurrent sessions.

use std::sync::Arc;

use evopt_engine::Database;
use evopt_server::{serve, Client, Response, ServerConfig};

fn served(max_sessions: usize) -> (Arc<Database>, evopt_server::ServerHandle) {
    let db = Arc::new(Database::with_defaults());
    let handle = serve(
        Arc::clone(&db),
        "127.0.0.1:0",
        ServerConfig { max_sessions },
    )
    .unwrap();
    (db, handle)
}

fn expect_result(resp: Response) -> String {
    match resp {
        Response::Result(text) => text,
        other => panic!("expected a result, got {other:?}"),
    }
}

#[test]
fn statements_roundtrip_over_the_wire() {
    let (_db, handle) = served(4);
    let mut c = Client::connect(handle.addr()).unwrap();
    expect_result(
        c.request("CREATE TABLE t (id INT NOT NULL, name STRING)")
            .unwrap(),
    );
    let text = expect_result(
        c.request("INSERT INTO t VALUES (1, 'ada'), (2, 'grace')")
            .unwrap(),
    );
    assert!(text.contains("2 row(s) affected"), "{text}");
    let text = expect_result(c.request("SELECT name FROM t WHERE id = 2").unwrap());
    assert!(text.contains("grace"), "{text}");
    // Errors come back tagged as errors, connection stays usable.
    match c.request("SELECT * FROM missing").unwrap() {
        Response::Error(e) => assert!(e.contains("missing"), "{e}"),
        other => panic!("{other:?}"),
    }
    let text = expect_result(c.request("SELECT COUNT(*) FROM t").unwrap());
    assert!(text.contains('2'), "{text}");
}

#[test]
fn writes_from_one_client_are_visible_to_another() {
    let (_db, handle) = served(4);
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    expect_result(a.request("CREATE TABLE shared (x INT)").unwrap());
    expect_result(a.request("INSERT INTO shared VALUES (7)").unwrap());
    let text = expect_result(b.request("SELECT x FROM shared").unwrap());
    assert!(text.contains('7'), "{text}");
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let (_db, handle) = served(8);
    let mut setup = Client::connect(handle.addr()).unwrap();
    expect_result(setup.request("CREATE TABLE n (v INT)").unwrap());
    expect_result(
        setup
            .request("INSERT INTO n VALUES (1), (2), (3), (4), (5)")
            .unwrap(),
    );
    let addr = handle.addr();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..10 {
                    let text = expect_result(c.request("SELECT COUNT(*) FROM n").unwrap());
                    assert!(text.contains('5'), "{text}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn capacity_overflow_is_refused_with_bye() {
    let (_db, handle) = served(1);
    let mut first = Client::connect(handle.addr()).unwrap();
    // Ensure the first connection's slot is claimed before the second
    // connects.
    expect_result(first.request("\\help").unwrap());
    let mut second = Client::connect(handle.addr()).unwrap();
    match second.request("\\help") {
        Ok(Response::Bye(text)) => assert!(text.contains("capacity"), "{text}"),
        // The refused stream may already be closed by the time we write.
        Err(_) => {}
        Ok(other) => panic!("expected Bye, got {other:?}"),
    }
    // The first connection keeps working.
    match first.request("\\help").unwrap() {
        Response::Result(_) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn meta_commands_work_over_the_wire() {
    let (_db, handle) = served(2);
    let mut c = Client::connect(handle.addr()).unwrap();
    expect_result(c.request("CREATE TABLE m (x INT)").unwrap());
    let text = expect_result(c.request("\\tables").unwrap());
    assert!(text.contains('m'), "{text}");
    let text = expect_result(c.request("\\strategy greedy").unwrap());
    assert!(text.contains("greedy"), "{text}");
    match c.request("\\q").unwrap() {
        Response::Bye(_) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn quit_frees_the_session_slot() {
    let (_db, handle) = served(1);
    let mut first = Client::connect(handle.addr()).unwrap();
    match first.request("\\q").unwrap() {
        Response::Bye(_) => {}
        other => panic!("{other:?}"),
    }
    // The slot is released once the handler exits; retry briefly.
    let mut ok = false;
    for _ in 0..50 {
        let mut c = match Client::connect(handle.addr()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match c.request("\\help") {
            Ok(Response::Result(_)) => {
                ok = true;
                break;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    assert!(ok, "slot was never released after quit");
}
