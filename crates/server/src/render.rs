//! Text rendering of statement results for the wire protocol and REPL.

use evopt_engine::QueryResult;

/// Cap on rendered rows per result; the true row count is still reported.
pub const ROW_LIMIT: usize = 1000;

pub fn render(result: &QueryResult) -> String {
    match result {
        QueryResult::Rows { schema, rows, .. } => {
            let mut out = String::new();
            let header: Vec<String> = schema
                .columns()
                .iter()
                .map(|c| c.qualified_name())
                .collect();
            out.push_str(&format!("| {} |\n", header.join(" | ")));
            for r in rows.iter().take(ROW_LIMIT) {
                let cells: Vec<String> = r.values().iter().map(|v| v.to_string()).collect();
                out.push_str(&format!("| {} |\n", cells.join(" | ")));
            }
            if rows.len() > ROW_LIMIT {
                out.push_str(&format!(
                    "... ({} rows total, showing {ROW_LIMIT})\n",
                    rows.len()
                ));
            }
            out.push_str(&format!("{} row(s)", rows.len()));
            out
        }
        QueryResult::Affected(n) => format!("{n} row(s) affected"),
        QueryResult::Explained(text) => text.clone(),
        QueryResult::Ok => "ok".to_string(),
    }
}
