//! The wire-protocol client: one statement out, one response back.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{read_frame, write_frame, Response};

/// A blocking client connection. Not thread-safe by design — the protocol
/// is strict request/response, so share a [`Client`] behind a lock or open
/// one per thread.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Send one statement (SQL or `\` meta command) and read its response.
    pub fn request(&mut self, statement: &str) -> io::Result<Response> {
        write_frame(&mut self.stream, statement.as_bytes())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }
}
