//! The TCP server: thread-per-connection over a bounded session pool.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use evopt_common::{EvoptError, Result};
use evopt_core::Strategy;
use evopt_engine::{Database, Session};

use crate::metrics::ServerMetrics;
use crate::protocol::{read_frame, write_frame, Response};
use crate::render;

/// Server knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Connections served concurrently; one engine session each. A
    /// connection arriving when every slot is taken is refused with a
    /// `Bye` frame (never queued).
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_sessions: 32 }
    }
}

/// A running server. Dropping the handle shuts the listener down and joins
/// the accept thread; connections already being served finish their
/// current statement and then fail on their next read.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    metrics: Arc<ServerMetrics>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` ephemeral-port bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's connection counters — the same numbers a `METRICS`
    /// scrape renders as `evopt_server_*` families.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Stop accepting, wake the listener, and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve connections over `db`
/// until the returned handle is shut down or dropped.
pub fn serve(db: Arc<Database>, addr: &str, config: ServerConfig) -> Result<ServerHandle> {
    let listener =
        TcpListener::bind(addr).map_err(|e| EvoptError::Io(format!("bind {addr}: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| EvoptError::Io(e.to_string()))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(ServerMetrics::default());
    let max = config.max_sessions.max(1);
    let accept = std::thread::spawn({
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        let active = Arc::new(AtomicUsize::new(0));
        move || loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Claim a session slot, or refuse: a full server answers
            // immediately instead of letting the connection hang.
            let claimed = active
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < max).then_some(n + 1)
                })
                .is_ok();
            if !claimed {
                metrics.connections_refused.inc();
                let mut stream = stream;
                let refuse = Response::Bye(format!("server at capacity ({max} sessions)"));
                let _ = write_frame(&mut stream, &refuse.encode());
                continue;
            }
            metrics.connections.inc();
            metrics
                .active_sessions
                .set(active.load(Ordering::SeqCst) as u64);
            let session = db.session();
            let active = Arc::clone(&active);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                serve_conn(&session, stream, &metrics);
                let remaining = active.fetch_sub(1, Ordering::SeqCst) - 1;
                metrics.active_sessions.set(remaining as u64);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        metrics,
    })
}

/// One connection's request loop: read a statement frame, execute it on
/// this connection's session, write the tagged response. Exits on client
/// disconnect, any write failure, or a `Bye` (quit or protocol error).
fn serve_conn(session: &Session, mut stream: TcpStream, metrics: &ServerMetrics) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // disconnect or protocol violation
        };
        metrics.frames.inc();
        metrics.bytes_in.add(payload.len() as u64 + 4);
        let response = match std::str::from_utf8(&payload) {
            Ok(text) => respond_on(session, text, Some(metrics)),
            Err(_) => Response::Error("request is not UTF-8".into()),
        };
        let bye = matches!(response, Response::Bye(_));
        let encoded = response.encode();
        metrics.bytes_out.add(encoded.len() as u64 + 4);
        if write_frame(&mut stream, &encoded).is_err() || bye {
            return;
        }
    }
}

/// Execute one line of input — SQL or a `\` meta command — on a session
/// and produce the wire response. Shared by the server and the local REPL
/// so both speak identically. (The REPL has no listener, so its scrapes
/// carry engine + session families only; see [`respond_on`].)
pub fn respond(session: &Session, line: &str) -> Response {
    respond_on(session, line, None)
}

/// [`respond`] with an optional listener: when serving a connection the
/// `METRICS` frame / `\metrics` command prepends the `evopt_server_*`
/// families to the engine + session scrape.
fn respond_on(session: &Session, line: &str, server: Option<&ServerMetrics>) -> Response {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Response::Result(String::new());
    }
    // Bare `METRICS` frame: the scrape entry point for tooling that isn't
    // a SQL client (a Prometheus exporter sidecar sends exactly this).
    if trimmed == "METRICS" {
        return metrics_response(session, server);
    }
    // Bare `TOPWAITS` frame: the contention summary for tooling (same
    // rendering as `\top-waits`).
    if trimmed == "TOPWAITS" {
        return top_waits_response(session);
    }
    if let Some(meta) = trimmed.strip_prefix('\\') {
        return meta_command(session, meta, server);
    }
    match session.execute(trimmed) {
        Ok(result) => Response::Result(render::render(&result)),
        Err(e) => Response::Error(e.to_string()),
    }
}

/// One scrape: server families (when serving), then the instance-wide
/// engine families, then this session's counters labeled `session="id"`.
fn metrics_response(session: &Session, server: Option<&ServerMetrics>) -> Response {
    let mut text = match server {
        Some(m) => m.render_prometheus(),
        None => String::new(),
    };
    text.push_str(&session.metrics_text());
    Response::Result(text)
}

/// Render the instance-wide contention histograms (the wait points the
/// rank table in `crates/common/src/lockorder.rs` declares), ranked by
/// total wait time. Quantile columns are bucket upper bounds — the best a
/// fixed-bucket histogram can report.
fn top_waits_response(session: &Session) -> Response {
    let snap = session.database().metrics_snapshot();
    let mut families = [
        ("evopt_commit_lock_wait_us", snap.commit_lock_wait_us),
        ("evopt_wal_sync_wait_us", snap.wal_sync_wait_us),
        ("evopt_pool_miss_io_us", snap.pool_miss_io_us),
        ("evopt_pool_load_wait_us", snap.pool_load_wait_us),
        ("evopt_snapshot_acquire_us", snap.snapshot_acquire_us),
    ];
    families.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then(a.0.cmp(b.0)));

    let bound = |b: Option<f64>| match b {
        None => "-".to_string(),
        Some(v) if v.is_infinite() => "+Inf".to_string(),
        Some(v) => format!("<={v:.0}"),
    };
    let mut out = format!(
        "  {:<28} {:>8} {:>12} {:>9} {:>9}\n",
        "family", "waits", "total_us", "p50_us", "max_us"
    );
    for (name, h) in &families {
        out.push_str(&format!(
            "  {:<28} {:>8} {:>12} {:>9} {:>9}\n",
            name,
            h.count,
            h.sum,
            bound(h.quantile_bound(0.5)),
            bound(h.max_bound()),
        ));
    }
    Response::Result(out.trim_end().to_string())
}

const HELP: &str = "  SQL:   CREATE TABLE / CREATE [UNIQUE|CLUSTERED] INDEX / INSERT /\n\
     \x20        SELECT / DELETE / UPDATE / ANALYZE / DROP TABLE /\n\
     \x20        EXPLAIN [ANALYZE] SELECT ...   (terminate with ';')\n\
     \x20 \\tables             list tables, row counts, indexes\n\
     \x20 \\strategy <name>    system-r | bushy-dp | dpccp | greedy |\n\
     \x20                     goo | quickpick | syntactic\n\
     \x20 \\metrics            server + engine + session metrics (Prometheus text)\n\
     \x20 \\top-waits          contention histograms ranked by total wait\n\
     \x20 \\q                  quit";

fn meta_command(session: &Session, cmd: &str, server: Option<&ServerMetrics>) -> Response {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "q" | "quit" | "exit" => Response::Bye("goodbye".into()),
        "help" | "?" => Response::Result(HELP.into()),
        "tables" => {
            let mut out = String::new();
            for t in session.database().catalog().tables() {
                let indexes: Vec<String> = t.indexes().iter().map(|i| i.name.clone()).collect();
                out.push_str(&format!(
                    "  {} — {} rows, {} pages, indexes: [{}]\n",
                    t.name,
                    t.heap.tuple_count(),
                    t.heap.page_count(),
                    indexes.join(", ")
                ));
            }
            Response::Result(out.trim_end().to_string())
        }
        "strategy" => match parts.next().and_then(parse_strategy) {
            Some(s) => {
                session.set_strategy(s);
                Response::Result(format!("strategy: {}", s.name()))
            }
            None => Response::Error("unknown strategy (see \\help)".into()),
        },
        "metrics" => metrics_response(session, server),
        "top-waits" => top_waits_response(session),
        other => Response::Error(format!("unknown command '\\{other}' (see \\help)")),
    }
}

/// Parse a strategy name as accepted by `\strategy`.
pub fn parse_strategy(name: &str) -> Option<Strategy> {
    Some(match name {
        "system-r" => Strategy::SystemR,
        "bushy-dp" => Strategy::BushyDp,
        "dpccp" => Strategy::DpCcp,
        "greedy" => Strategy::Greedy,
        "goo" => Strategy::Goo,
        "quickpick" => Strategy::QuickPick {
            samples: 16,
            seed: 1,
        },
        "syntactic" => Strategy::Syntactic,
        _ => return None,
    })
}
