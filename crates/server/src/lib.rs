//! # evopt-server
//!
//! The multi-session wire front-end: a TCP server speaking a
//! length-prefixed text protocol (see [`protocol`]), a matching
//! [`Client`], and the interactive REPL that drives either a local
//! in-process database or a remote server.
//!
//! One [`evopt_engine::Session`] is created per accepted connection, up to
//! a bounded pool ([`ServerConfig::max_sessions`]); connections past the
//! bound are refused with a `Bye` frame rather than queued, so a stalled
//! client can never wedge the listener. Statement execution is entirely
//! the engine's: sessions share one [`evopt_engine::Database`], reads run
//! on catalog snapshots, writes serialize through the engine commit lock.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod client;
pub mod metrics;
pub mod protocol;
mod render;
pub mod repl;
pub mod server;

pub use client::Client;
pub use metrics::ServerMetrics;
pub use protocol::{read_frame, write_frame, Response, MAX_FRAME};
pub use server::{parse_strategy, respond, serve, ServerConfig, ServerHandle};
