//! The `evopt-server` binary: serve a database over TCP, connect a REPL
//! to a remote server, or run the REPL locally.
//!
//! ```text
//! evopt-server serve [ADDR]     # default 127.0.0.1:5433
//! evopt-server client [ADDR]    # wire-protocol REPL
//! evopt-server [local]          # in-process REPL (default)
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;
use std::sync::Arc;

use evopt_engine::Database;
use evopt_server::{repl, serve, ServerConfig};

const DEFAULT_ADDR: &str = "127.0.0.1:5433";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => {
            let addr = args.get(2).map(String::as_str).unwrap_or(DEFAULT_ADDR);
            let db = Arc::new(Database::with_defaults());
            match serve(db, addr, ServerConfig::default()) {
                Ok(handle) => {
                    println!("evopt-server listening on {}", handle.addr());
                    loop {
                        std::thread::park();
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("client") => {
            let addr = args.get(2).map(String::as_str).unwrap_or(DEFAULT_ADDR);
            match repl::run_client(addr) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("local") | None => {
            repl::run_local(Arc::new(Database::with_defaults()));
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown mode '{other}'");
            eprintln!("usage: evopt-server [serve [ADDR] | client [ADDR] | local]");
            ExitCode::from(2)
        }
    }
}
