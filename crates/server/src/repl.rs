//! The interactive shell, in two flavours over one line loop: `local`
//! (in-process database, one session) and `client` (statements shipped to
//! a remote server over the wire protocol).
//!
//! ```text
//! evopt> CREATE TABLE t (id INT NOT NULL, name STRING);
//! evopt> INSERT INTO t VALUES (1, 'ada'), (2, 'grace');
//! evopt> SELECT * FROM t WHERE id = 2;
//! evopt> \strategy greedy
//! evopt> \q
//! ```
//!
//! Also accepts SQL on stdin non-interactively; set `NO_PROMPT` to
//! suppress the prompt.

use std::io::{BufRead, Write};
use std::sync::Arc;

use evopt_engine::Database;

use crate::client::Client;
use crate::protocol::Response;
use crate::server::respond;

/// Run the REPL against an in-process database (one session).
pub fn run_local(db: Arc<Database>) {
    let session = db.session();
    banner("local in-memory database");
    line_loop(|text| respond(&session, text));
}

/// Run the REPL against a remote server.
pub fn run_client(addr: &str) -> std::io::Result<()> {
    let mut client = Client::connect(addr)?;
    banner(&format!("connected to {addr}"));
    line_loop(move |text| {
        client
            .request(text)
            .unwrap_or_else(|e| Response::Bye(format!("connection lost: {e}")))
    });
    Ok(())
}

fn interactive() -> bool {
    std::env::var_os("NO_PROMPT").is_none()
}

fn banner(mode: &str) {
    if interactive() {
        println!("evopt — evaluation and optimization of relational queries ({mode})");
        println!("type SQL terminated by ';', or \\help");
    }
}

fn line_loop(mut eval: impl FnMut(&str) -> Response) {
    let stdin = std::io::stdin();
    let interactive = interactive();
    let mut buffer = String::new();
    loop {
        if interactive {
            print!(
                "{}",
                if buffer.is_empty() {
                    "evopt> "
                } else {
                    "   ..> "
                }
            );
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        // Meta commands run immediately, never buffered.
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !show(eval(trimmed), None) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            if buffer.trim().is_empty() {
                buffer.clear();
            }
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        let started = std::time::Instant::now();
        let response = eval(sql.trim());
        if !show(response, Some(started.elapsed().as_secs_f64() * 1e3)) {
            break;
        }
    }
}

/// Print a response; returns false when the loop should exit.
fn show(response: Response, elapsed_ms: Option<f64>) -> bool {
    match response {
        Response::Result(text) => {
            if !text.is_empty() {
                println!("{text}");
            }
            if let Some(ms) = elapsed_ms {
                println!("({ms:.1} ms)");
            }
            true
        }
        Response::Error(text) => {
            println!("{text}");
            true
        }
        Response::Bye(text) => {
            println!("{text}");
            false
        }
    }
}
