//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is a 4-byte little-endian payload length followed by the
//! payload. Client → server payloads are UTF-8 statement text (SQL, a
//! `\`-prefixed meta command, or the bare word `METRICS` — a scrape
//! request answered with Prometheus text). Server → client payloads carry
//! a one-byte tag followed by UTF-8 text:
//!
//! | tag | meaning |
//! |-----|---------|
//! | `R` | result: rendered statement output |
//! | `E` | error: the statement failed; text is the engine error |
//! | `B` | bye: the server is closing this connection (quit acknowledged, or capacity refused) |
//!
//! Frames are capped at [`MAX_FRAME`] bytes in both directions: a reader
//! that sees a larger length declared knows the stream is garbage (not a
//! huge frame) and drops the connection rather than allocating.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload, both directions (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Rendered statement output.
    Result(String),
    /// The statement failed.
    Error(String),
    /// The server is closing this connection.
    Bye(String),
}

impl Response {
    fn tag(&self) -> u8 {
        match self {
            Response::Result(_) => b'R',
            Response::Error(_) => b'E',
            Response::Bye(_) => b'B',
        }
    }

    fn text(&self) -> &str {
        match self {
            Response::Result(t) | Response::Error(t) | Response::Bye(t) => t,
        }
    }

    /// Serialize as a tagged payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let text = self.text().as_bytes();
        let mut out = Vec::with_capacity(1 + text.len());
        out.push(self.tag());
        out.extend_from_slice(text);
        out
    }

    /// Parse a tagged payload.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let (tag, rest) = payload
            .split_first()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response frame"))?;
        let text = std::str::from_utf8(rest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
            .to_string();
        match tag {
            b'R' => Ok(Response::Result(text)),
            b'E' => Ok(Response::Error(text)),
            b'B' => Ok(Response::Bye(text)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown response tag 0x{other:02x}"),
            )),
        }
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one length-prefixed frame. A declared length over [`MAX_FRAME`]
/// is a protocol violation, reported before any allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer declared a {len}-byte frame (cap {MAX_FRAME})"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"SELECT 1").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"SELECT 1");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err()); // EOF
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Result("| a |\n".into()),
            Response::Error("unknown table 'x'".into()),
            Response::Bye("goodbye".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &buf[..];
        let e = read_frame(&mut r).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_writes_are_refused() {
        let huge = vec![b'x'; MAX_FRAME + 1];
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &huge).is_err());
        assert!(sink.is_empty(), "nothing must hit the wire");
    }

    #[test]
    fn garbage_tags_are_rejected() {
        assert!(Response::decode(b"").is_err());
        assert!(Response::decode(b"Zoops").is_err());
        assert!(Response::decode(&[b'R', 0xff, 0xfe]).is_err()); // invalid UTF-8
    }
}
