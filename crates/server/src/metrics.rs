//! Server-side observability: what the listener and connection loops see,
//! as distinct from what the engine sees. One [`ServerMetrics`] per
//! [`crate::serve`] call, shared by the accept thread and every
//! connection thread; rendered as `evopt_server_*` Prometheus families at
//! the front of a `METRICS` / `\metrics` scrape.

use evopt_obs::{Counter, Gauge};

/// Counters and gauges for one listening server.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections currently holding a session slot.
    pub active_sessions: Gauge,
    /// Connections accepted and given a session (refused ones excluded).
    pub connections: Counter,
    /// Connections refused because every session slot was taken.
    pub connections_refused: Counter,
    /// Request frames read across all connections.
    pub frames: Counter,
    /// Bytes read off the wire (payload + 4-byte length prefix).
    pub bytes_in: Counter,
    /// Bytes written to the wire (payload + 4-byte length prefix).
    pub bytes_out: Counter,
}

impl ServerMetrics {
    /// Prometheus text exposition of every `evopt_server_*` family.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE evopt_server_active_sessions gauge\n");
        out.push_str(&format!(
            "evopt_server_active_sessions {}\n",
            self.active_sessions.get()
        ));
        for (name, v) in [
            ("evopt_server_connections_total", self.connections.get()),
            (
                "evopt_server_connections_refused_total",
                self.connections_refused.get(),
            ),
            ("evopt_server_frames_total", self.frames.get()),
            ("evopt_server_bytes_in_total", self.bytes_in.get()),
            ("evopt_server_bytes_out_total", self.bytes_out.get()),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_renders_with_a_type_line() {
        let m = ServerMetrics::default();
        m.active_sessions.set(3);
        m.connections.add(7);
        m.connections_refused.inc();
        m.frames.add(42);
        m.bytes_in.add(1000);
        m.bytes_out.add(2000);
        let text = m.render_prometheus();
        for family in [
            "evopt_server_active_sessions",
            "evopt_server_connections_total",
            "evopt_server_connections_refused_total",
            "evopt_server_frames_total",
            "evopt_server_bytes_in_total",
            "evopt_server_bytes_out_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family} ")),
                "missing TYPE line for {family}"
            );
        }
        assert!(text.contains("evopt_server_active_sessions 3\n"));
        assert!(text.contains("evopt_server_connections_total 7\n"));
        assert!(text.contains("evopt_server_frames_total 42\n"));
    }
}
