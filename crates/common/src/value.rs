//! Scalar values and their data types.
//!
//! [`Value`] is the engine's dynamically-typed runtime scalar. It carries a
//! **total order** (`Null` sorts first, then booleans, integers and floats in
//! one numeric class, then strings) so tuples can be sorted and B+-tree keys
//! compared without panicking, and a hash implementation consistent with
//! equality so values can key hash tables in joins and aggregation.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{EvoptError, Result};

/// The static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
}

impl DataType {
    /// True when the type participates in arithmetic.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// The common type two operands coerce to for comparison/arithmetic, if
    /// one exists.
    pub fn unify(self, other: DataType) -> Option<DataType> {
        match (self, other) {
            (a, b) if a == b => Some(a),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int) => {
                Some(DataType::Float)
            }
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
        };
        f.write_str(s)
    }
}

/// A dynamically-typed scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares equal to itself under the *total* order (needed
    /// for sorting and grouping) but is filtered by three-valued logic in
    /// predicate evaluation.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// The runtime type, or `None` for `Null` (which inhabits every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and histogram bucketing; integers
    /// widen losslessly (within f64 mantissa) to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank of the value's class in the total order. `Null` < `Bool` <
    /// numeric < `Str`.
    fn class_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// SQL equality under three-valued logic: any comparison with NULL is
    /// unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other) == Ordering::Equal)
    }

    /// SQL ordering comparison under three-valued logic.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }

    /// Join-key equality: SQL semantics collapsed to a boolean. NULL keys
    /// never match — including `NULL = NULL`. This is what every join
    /// family must use for key comparison; the derived `Eq` (which treats
    /// `Null == Null` as equal) is only for total-order contexts such as
    /// ORDER BY and GROUP BY.
    pub fn sql_key_eq(&self, other: &Value) -> bool {
        self.sql_eq(other) == Some(true)
    }

    /// Checked addition with Int/Float coercion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Checked subtraction with Int/Float coercion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Checked multiplication with Int/Float coercion.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division: integer division for two Ints, float otherwise. Division by
    /// zero is an execution error (by NULL it is NULL).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(EvoptError::Execution("division by zero".into())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a / b)),
            _ => {
                let (a, b) = require_numeric(self, other, "/")?;
                if b == 0.0 {
                    Err(EvoptError::Execution("division by zero".into()))
                } else {
                    Ok(Value::Float(a / b))
                }
            }
        }
    }

    /// Modulo for integers.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(_), Value::Int(0)) => Err(EvoptError::Execution("modulo by zero".into())),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a % b)),
            _ => Err(EvoptError::Execution(format!(
                "cannot apply % to {self:?} and {other:?}"
            ))),
        }
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EvoptError::Execution("integer overflow in negation".into())),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(EvoptError::Execution(format!("cannot negate {other:?}"))),
        }
    }
}

fn require_numeric(a: &Value, b: &Value, op: &str) -> Result<(f64, f64)> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EvoptError::Execution(format!(
            "cannot apply {op} to {a:?} and {b:?}"
        ))),
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| EvoptError::Execution(format!("integer overflow in {op}"))),
        _ => {
            let (x, y) = require_numeric(a, b, op)?;
            Ok(Value::Float(float_op(x, y)))
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: class rank first, then within-class comparison. Ints and
    /// floats compare numerically in one class; NaN sorts above all other
    /// floats (total_cmp semantics) so sorting never panics.
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.class_rank(), other.class_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Unreachable while class_rank stays in sync with the variant
            // list; Equal keeps Ord total (and sorting panic-free) even if
            // it drifts.
            _ => Ordering::Equal,
        }
    }
}

impl Hash for Value {
    /// Hash consistent with `Eq`: the total order compares numerics via
    /// `f64::total_cmp`, under which two floats are equal **iff** their bit
    /// patterns are identical — so hashing `to_bits` of the numeric value is
    /// exactly consistent (and `Int(7)` hashes like `Float(7.0)`).
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.class_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn total_order_across_classes() {
        let mut vals = [
            Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(1.5),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert!(matches!(vals[4], Value::Str(_)));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
    }

    #[test]
    fn hash_consistent_with_eq_for_mixed_numerics() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
        // total_cmp distinguishes the zero signs; hash does too.
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_ne!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn nan_equals_itself_in_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(hash_of(&nan), hash_of(&Value::Float(f64::NAN)));
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn sql_eq_propagates_null() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn sql_key_eq_rejects_null_keys() {
        assert!(!Value::Null.sql_key_eq(&Value::Null));
        assert!(!Value::Null.sql_key_eq(&Value::Int(1)));
        assert!(!Value::Int(1).sql_key_eq(&Value::Null));
        assert!(Value::Int(1).sql_key_eq(&Value::Int(1)));
        assert!(Value::Int(7).sql_key_eq(&Value::Float(7.0)));
        assert!(!Value::Int(1).sql_key_eq(&Value::Int(2)));
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(Value::Int(7).div(&Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(
            Value::Float(7.0).div(&Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn arithmetic_overflow_is_error_not_panic() {
        let e = Value::Int(i64::MAX).add(&Value::Int(1)).unwrap_err();
        assert_eq!(e.kind(), "execution");
        let e = Value::Int(i64::MIN).neg().unwrap_err();
        assert_eq!(e.kind(), "execution");
    }

    #[test]
    fn division_by_zero_errors_but_null_propagates() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Float(1.0).div(&Value::Float(0.0)).is_err());
        assert_eq!(Value::Null.div(&Value::Int(0)).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_on_strings_errors() {
        assert!(Value::Str("a".into()).add(&Value::Int(1)).is_err());
        assert!(Value::Bool(true).mul(&Value::Int(1)).is_err());
    }

    #[test]
    fn unify_types() {
        assert_eq!(DataType::Int.unify(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Str.unify(DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::Bool.unify(DataType::Int), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("x".into()).to_string(), "'x'");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
