//! # evopt-common
//!
//! Foundation types shared by every layer of the `evopt` query engine:
//!
//! * [`Value`] / [`DataType`] — the dynamically-typed scalar values stored in
//!   relations and produced by expression evaluation.
//! * [`Schema`] / [`Column`] — relation schemas with optional table
//!   qualifiers, used for name resolution and plan typing.
//! * [`Tuple`] — a row of values with a compact binary (de)serialisation used
//!   by the storage layer.
//! * [`Batch`] — a schema plus an ordered run of tuples: the unit of data
//!   flow between executor operators.
//! * [`ColumnarBatch`] — the column-major counterpart: one typed column
//!   vector per schema field with a validity bitmap, plus a selection
//!   vector, feeding the type-specialized kernels in `evopt-exec`.
//! * [`Expr`] — bound scalar expression trees (column ordinals, literals,
//!   comparisons, boolean connectives, arithmetic, `LIKE`, `IN`, `BETWEEN`)
//!   with an evaluator and a constant folder.
//! * [`EvoptError`] — the error type threaded through the whole workspace.
//!
//! Nothing in this crate knows about pages, statistics, plans or SQL; it is
//! the vocabulary the rest of the system speaks.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (see clippy.toml: allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod batch;
pub mod columnar;
pub mod error;
pub mod expr;
pub mod lockorder;
pub mod schema;
pub mod tuple;
pub mod value;

pub use batch::{Batch, DEFAULT_BATCH_ROWS};
pub use columnar::{Cell, ColumnData, ColumnVector, ColumnarBatch, Validity};
pub use error::{EvoptError, Result};
pub use expr::{AggFunc, BinOp, Expr, UnOp};
pub use schema::{Column, Schema};
pub use tuple::Tuple;
pub use value::{DataType, Value};
