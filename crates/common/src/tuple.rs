//! Tuples and their binary encoding.
//!
//! The storage layer stores tuples as opaque byte strings inside slotted
//! pages; [`Tuple::encode`] / [`Tuple::decode`] define that format:
//!
//! ```text
//! [u16 value-count] then per value:
//!   tag 0 = Null
//!   tag 1 = Bool  + 1 byte
//!   tag 2 = Int   + 8 bytes LE
//!   tag 3 = Float + 8 bytes LE (f64 bits)
//!   tag 4 = Str   + u32 LE length + UTF-8 bytes
//! ```
//!
//! The format is self-describing (no schema needed to decode), which keeps
//! heap-file scans and B+-tree payloads simple and makes corruption loudly
//! detectable.

use std::fmt;

use crate::error::{EvoptError, Result};
use crate::value::Value;

/// A row: an ordered list of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, idx: usize) -> Result<&Value> {
        self.values
            .get(idx)
            .ok_or_else(|| EvoptError::Execution(format!("tuple index {idx} out of range")))
    }

    /// Concatenate two tuples (join output).
    pub fn join(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Keep only the values at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Tuple> {
        let mut values = Vec::with_capacity(indices.len());
        for &i in indices {
            values.push(self.value(i)?.clone());
        }
        Ok(Tuple::new(values))
    }

    /// Serialised size in bytes (what `encode` will produce).
    pub fn encoded_len(&self) -> usize {
        let mut n = 2;
        for v in &self.values {
            n += 1 + match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 8,
                Value::Str(s) => 4 + s.len(),
            };
        }
        n
    }

    /// Serialise to the storage format described in the module docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        buf.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            match v {
                Value::Null => buf.push(0),
                Value::Bool(b) => {
                    buf.push(1);
                    buf.push(*b as u8);
                }
                Value::Int(i) => {
                    buf.push(2);
                    buf.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    buf.push(3);
                    buf.extend_from_slice(&f.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    buf.push(4);
                    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    buf.extend_from_slice(s.as_bytes());
                }
            }
        }
        buf
    }

    /// Deserialise from the storage format; errors on truncation or bad tags.
    pub fn decode(bytes: &[u8]) -> Result<Tuple> {
        let mut r = Reader::new(bytes);
        let count = r.u16()? as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = r.u8()?;
            let v = match tag {
                0 => Value::Null,
                1 => Value::Bool(r.u8()? != 0),
                2 => Value::Int(i64::from_le_bytes(r.array::<8>()?)),
                3 => Value::Float(f64::from_bits(u64::from_le_bytes(r.array::<8>()?))),
                4 => {
                    let len = u32::from_le_bytes(r.array::<4>()?) as usize;
                    let raw = r.bytes(len)?;
                    let s = std::str::from_utf8(raw).map_err(|_| {
                        EvoptError::Storage("invalid UTF-8 in stored string".into())
                    })?;
                    Value::Str(s.to_owned())
                }
                t => {
                    return Err(EvoptError::Storage(format!(
                        "invalid value tag {t} in stored tuple"
                    )))
                }
            };
            values.push(v);
        }
        Ok(Tuple::new(values))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| EvoptError::Storage("truncated tuple".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array::<2>()?))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let s = self.bytes(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(t: &Tuple) {
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        let back = Tuple::decode(&bytes).unwrap();
        assert_eq!(&back, t);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(&Tuple::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(3.25),
            Value::Str("hello world".into()),
        ]));
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(&Tuple::new(vec![]));
    }

    #[test]
    fn decode_truncated_errors() {
        let bytes = Tuple::new(vec![Value::Int(5)]).encode();
        for cut in 0..bytes.len() {
            assert!(Tuple::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_bad_tag_errors() {
        let mut bytes = Tuple::new(vec![Value::Int(5)]).encode();
        bytes[2] = 99;
        let e = Tuple::decode(&bytes).unwrap_err();
        assert_eq!(e.kind(), "storage");
    }

    #[test]
    fn join_and_project() {
        let a = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Tuple::new(vec![Value::Str("x".into())]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        let p = j.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Str("x".into()), Value::Int(1)]);
        assert!(j.project(&[7]).is_err());
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null]);
        assert_eq!(t.to_string(), "(1, NULL)");
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            ".{0,64}".prop_map(Value::Str),
        ]
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(values in prop::collection::vec(arb_value(), 0..20)) {
            let t = Tuple::new(values);
            let bytes = t.encode();
            prop_assert_eq!(bytes.len(), t.encoded_len());
            let back = Tuple::decode(&bytes).unwrap();
            // NaN payloads survive bit-exactly, so Eq (total order) holds.
            prop_assert_eq!(back, t);
        }

        #[test]
        fn prop_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = Tuple::decode(&bytes); // must not panic, may error
        }
    }
}
