//! Column-major batches: the typed counterpart of the row [`Batch`].
//!
//! A [`ColumnarBatch`] holds one [`ColumnVector`] per schema field. Each
//! vector stores its values in a typed Rust vector (`Vec<i64>`, `Vec<f64>`,
//! `Vec<bool>`, `Vec<String>`) paired with a validity bitmap (one bit per
//! slot; a cleared bit means SQL NULL and the slot's payload is a don't-care
//! default). A batch optionally carries a **selection vector** — sorted row
//! indices that survived a filter — so predicates can narrow a batch without
//! copying any column data.
//!
//! Because [`Value`] is dynamically typed, a column *declared* `FLOAT` can
//! legally hold `Int` values (insertion widens `INT → FLOAT` at the type
//! level but keeps the runtime variant). Collapsing such a column to
//! `Vec<f64>` would change observable results (`SUM` over all-`Int` inputs
//! must stay `Int`), so conversion is value-driven: a column gets a typed
//! vector only when every non-null value shares one runtime variant, and
//! falls back to [`ColumnData::Any`] (a plain `Vec<Value>`) otherwise. Typed
//! kernels check the representation and take the exact generic path on
//! `Any`, so columnar execution is bit-for-bit identical to the row path.

use crate::batch::Batch;
use crate::error::{EvoptError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Validity bitmap: one bit per slot, set = non-NULL.
#[derive(Debug, Clone, Default)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
    valid: usize,
}

impl Validity {
    pub fn with_capacity(capacity: usize) -> Validity {
        Validity {
            words: Vec::with_capacity(capacity.div_ceil(64)),
            len: 0,
            valid: 0,
        }
    }

    /// Append one slot's validity bit.
    pub fn push(&mut self, is_valid: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if word == self.words.len() {
            self.words.push(0);
        }
        if is_valid {
            self.words[word] |= 1u64 << bit;
            self.valid += 1;
        }
        self.len += 1;
    }

    /// Whether slot `i` is non-NULL. Out-of-range reads are NULL.
    pub fn is_valid(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of non-NULL slots.
    pub fn count_valid(&self) -> usize {
        self.valid
    }

    /// True when no slot is NULL — kernels skip per-row validity tests.
    pub fn all_valid(&self) -> bool {
        self.valid == self.len
    }
}

/// The typed payload of one column. Invalid (NULL) slots hold an arbitrary
/// default; only the validity bitmap distinguishes them.
#[derive(Debug, Clone)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
    /// Exactness fallback for columns whose non-null values mix runtime
    /// variants (e.g. `Int` rows stored in a declared-`FLOAT` column).
    Any(Vec<Value>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Any(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A borrowed, non-owning view of one slot — lets kernels compare and
/// accumulate without materialising a [`Value`] (no `String` clones).
#[derive(Debug, Clone, Copy)]
pub enum Cell<'a> {
    Null,
    I(i64),
    F(f64),
    B(bool),
    S(&'a str),
}

impl<'a> Cell<'a> {
    pub fn of(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Null => Cell::Null,
            Value::Int(i) => Cell::I(*i),
            Value::Float(f) => Cell::F(*f),
            Value::Bool(b) => Cell::B(*b),
            Value::Str(s) => Cell::S(s),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Owned [`Value`] (clones strings).
    pub fn to_value(self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::I(i) => Value::Int(i),
            Cell::F(f) => Value::Float(f),
            Cell::B(b) => Value::Bool(b),
            Cell::S(s) => Value::Str(s.to_owned()),
        }
    }

    /// Rank of the cell's class in the engine's total order; mirrors
    /// `Value`'s class ranking (`Bool` < numeric < `Str`). NULL has no rank.
    fn class_rank(&self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::B(_) => 1,
            Cell::I(_) | Cell::F(_) => 2,
            Cell::S(_) => 3,
        }
    }
}

/// Total-order comparison of two non-null cells, exactly mirroring
/// `Value::cmp` (ints and floats compare numerically via `total_cmp`, class
/// rank decides across classes). Returns `None` when either side is NULL —
/// i.e. the same contract as `Value::sql_cmp`.
pub fn cell_cmp(a: Cell<'_>, b: Cell<'_>) -> Option<std::cmp::Ordering> {
    if a.is_null() || b.is_null() {
        return None;
    }
    let (ra, rb) = (a.class_rank(), b.class_rank());
    if ra != rb {
        return Some(ra.cmp(&rb));
    }
    Some(match (a, b) {
        (Cell::B(x), Cell::B(y)) => x.cmp(&y),
        (Cell::I(x), Cell::I(y)) => x.cmp(&y),
        (Cell::F(x), Cell::F(y)) => x.total_cmp(&y),
        (Cell::I(x), Cell::F(y)) => (x as f64).total_cmp(&y),
        (Cell::F(x), Cell::I(y)) => x.total_cmp(&(y as f64)),
        (Cell::S(x), Cell::S(y)) => x.cmp(y),
        // Unreachable while class_rank stays in sync with the variants.
        _ => std::cmp::Ordering::Equal,
    })
}

/// One column: typed data plus its validity bitmap.
#[derive(Debug, Clone)]
pub struct ColumnVector {
    pub data: ColumnData,
    pub validity: Validity,
}

impl ColumnVector {
    /// Extract column `col` from a run of rows. Picks the typed
    /// representation when every non-null value shares one runtime variant;
    /// falls back to [`ColumnData::Any`] otherwise (see module docs).
    pub fn from_rows(rows: &[Tuple], col: usize) -> Result<ColumnVector> {
        // Decide the representation in one scan over the runtime variants.
        let mut variant: Option<u8> = None; // 0=Int 1=Float 2=Bool 3=Str
        let mut mixed = false;
        for t in rows {
            let tag = match t.value(col)? {
                Value::Null => continue,
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Bool(_) => 2,
                Value::Str(_) => 3,
            };
            match variant {
                None => variant = Some(tag),
                Some(v) if v == tag => {}
                Some(_) => {
                    mixed = true;
                    break;
                }
            }
        }
        let mut validity = Validity::with_capacity(rows.len());
        let data = if mixed {
            let mut out = Vec::with_capacity(rows.len());
            for t in rows {
                let v = t.value(col)?;
                validity.push(!v.is_null());
                out.push(v.clone());
            }
            ColumnData::Any(out)
        } else {
            match variant {
                // All-NULL columns: any typed vector works; Int is cheapest.
                None | Some(0) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for t in rows {
                        match t.value(col)? {
                            Value::Int(i) => {
                                validity.push(true);
                                out.push(*i);
                            }
                            _ => {
                                validity.push(false);
                                out.push(0);
                            }
                        }
                    }
                    ColumnData::Int(out)
                }
                Some(1) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for t in rows {
                        match t.value(col)? {
                            Value::Float(f) => {
                                validity.push(true);
                                out.push(*f);
                            }
                            _ => {
                                validity.push(false);
                                out.push(0.0);
                            }
                        }
                    }
                    ColumnData::Float(out)
                }
                Some(2) => {
                    let mut out = Vec::with_capacity(rows.len());
                    for t in rows {
                        match t.value(col)? {
                            Value::Bool(b) => {
                                validity.push(true);
                                out.push(*b);
                            }
                            _ => {
                                validity.push(false);
                                out.push(false);
                            }
                        }
                    }
                    ColumnData::Bool(out)
                }
                _ => {
                    let mut out = Vec::with_capacity(rows.len());
                    for t in rows {
                        match t.value(col)? {
                            Value::Str(s) => {
                                validity.push(true);
                                out.push(s.clone());
                            }
                            _ => {
                                validity.push(false);
                                out.push(String::new());
                            }
                        }
                    }
                    ColumnData::Str(out)
                }
            }
        };
        Ok(ColumnVector { data, validity })
    }

    pub fn len(&self) -> usize {
        self.validity.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed view of slot `i` (NULL for invalid or out-of-range slots).
    pub fn cell(&self, i: usize) -> Cell<'_> {
        if !self.validity.is_valid(i) {
            return Cell::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Cell::I(v[i]),
            ColumnData::Float(v) => Cell::F(v[i]),
            ColumnData::Bool(v) => Cell::B(v[i]),
            ColumnData::Str(v) => Cell::S(&v[i]),
            ColumnData::Any(v) => Cell::of(&v[i]),
        }
    }

    /// Owned value of slot `i` (clones strings).
    pub fn value(&self, i: usize) -> Value {
        self.cell(i).to_value()
    }
}

/// A column-major batch: one typed vector per schema field plus an optional
/// selection vector (sorted row indices that survive upstream filtering).
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    schema: Schema,
    columns: Vec<ColumnVector>,
    len: usize,
    selection: Option<Vec<u32>>,
}

impl ColumnarBatch {
    /// Convert a row batch, transposing every column.
    pub fn from_batch(batch: &Batch) -> Result<ColumnarBatch> {
        let width = batch.schema().len();
        let rows = batch.rows();
        let columns = (0..width)
            .map(|c| ColumnVector::from_rows(rows, c))
            .collect::<Result<Vec<_>>>()?;
        Ok(ColumnarBatch {
            schema: batch.schema().clone(),
            columns,
            len: rows.len(),
            selection: None,
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    pub fn column(&self, i: usize) -> Result<&ColumnVector> {
        self.columns
            .get(i)
            .ok_or_else(|| EvoptError::Internal(format!("column ordinal {i} out of range")))
    }

    /// Physical rows stored (ignoring the selection).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.selected_len() == 0
    }

    /// Rows visible through the selection.
    pub fn selected_len(&self) -> usize {
        match &self.selection {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    pub fn selection(&self) -> Option<&[u32]> {
        self.selection.as_deref()
    }

    /// Replace the selection (indices must be sorted ascending and within
    /// range; kernels produce them that way).
    pub fn with_selection(mut self, selection: Vec<u32>) -> ColumnarBatch {
        self.selection = Some(selection);
        self
    }

    /// The visible row indices, in order.
    pub fn selected_indices(&self) -> Vec<u32> {
        match &self.selection {
            Some(s) => s.clone(),
            None => (0..self.len as u32).collect(),
        }
    }

    /// Materialise back to a row batch, honouring the selection.
    pub fn to_batch(&self) -> Batch {
        let mut out = Batch::with_capacity(self.schema.clone(), self.selected_len());
        let emit = |out: &mut Batch, i: usize| {
            let values: Vec<Value> = self.columns.iter().map(|c| c.value(i)).collect();
            out.push(Tuple::new(values));
        };
        match &self.selection {
            Some(sel) => {
                for &i in sel {
                    emit(&mut out, i as usize);
                }
            }
            None => {
                for i in 0..self.len {
                    emit(&mut out, i);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;
    use std::cmp::Ordering;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("i", DataType::Int),
            Column::new("f", DataType::Float),
            Column::new("s", DataType::Str),
            Column::new("b", DataType::Bool),
        ])
    }

    fn sample_batch() -> Batch {
        let rows = vec![
            Tuple::new(vec![
                Value::Int(1),
                Value::Float(1.5),
                Value::Str("a".into()),
                Value::Bool(true),
            ]),
            Tuple::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
            Tuple::new(vec![
                Value::Int(-3),
                Value::Float(-0.0),
                Value::Str("".into()),
                Value::Bool(false),
            ]),
        ];
        Batch::new(schema(), rows)
    }

    #[test]
    fn round_trip_preserves_rows_and_nulls() {
        let batch = sample_batch();
        let cb = ColumnarBatch::from_batch(&batch).unwrap();
        assert_eq!(cb.len(), 3);
        assert_eq!(cb.selected_len(), 3);
        let back = cb.to_batch();
        assert_eq!(back.rows(), batch.rows());
        // -0.0 must survive the round trip bit-exactly.
        assert_eq!(
            back.rows()[2].value(1).unwrap().as_f64().unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn typed_representation_chosen_per_runtime_variant() {
        let cb = ColumnarBatch::from_batch(&sample_batch()).unwrap();
        assert!(matches!(cb.column(0).unwrap().data, ColumnData::Int(_)));
        assert!(matches!(cb.column(1).unwrap().data, ColumnData::Float(_)));
        assert!(matches!(cb.column(2).unwrap().data, ColumnData::Str(_)));
        assert!(matches!(cb.column(3).unwrap().data, ColumnData::Bool(_)));
    }

    #[test]
    fn mixed_int_float_column_falls_back_to_any() {
        // A declared-FLOAT column holding an Int value (legal: INT widens to
        // FLOAT at the type level) must keep the Int variant observable.
        let rows = vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::Float(2.5)]),
        ];
        let cv = ColumnVector::from_rows(&rows, 0).unwrap();
        assert!(matches!(cv.data, ColumnData::Any(_)));
        assert_eq!(cv.value(0), Value::Int(1));
        assert_eq!(cv.value(1), Value::Float(2.5));
    }

    #[test]
    fn validity_bitmap_across_word_boundary() {
        let mut v = Validity::with_capacity(130);
        for i in 0..130 {
            v.push(i % 3 != 0);
        }
        assert_eq!(v.len(), 130);
        for i in 0..130 {
            assert_eq!(v.is_valid(i), i % 3 != 0, "slot {i}");
        }
        assert!(!v.is_valid(500));
        assert!(!v.all_valid());
        assert_eq!(v.count_valid(), (0..130).filter(|i| i % 3 != 0).count());
    }

    #[test]
    fn all_null_column_is_typed_with_empty_validity() {
        let rows = vec![Tuple::new(vec![Value::Null]), Tuple::new(vec![Value::Null])];
        let cv = ColumnVector::from_rows(&rows, 0).unwrap();
        assert_eq!(cv.validity.count_valid(), 0);
        assert!(cv.cell(0).is_null());
        assert_eq!(cv.value(1), Value::Null);
    }

    #[test]
    fn selection_vector_narrows_to_batch() {
        let cb = ColumnarBatch::from_batch(&sample_batch())
            .unwrap()
            .with_selection(vec![0, 2]);
        assert_eq!(cb.selected_len(), 2);
        let back = cb.to_batch();
        assert_eq!(back.len(), 2);
        assert_eq!(back.rows()[0].value(0).unwrap(), &Value::Int(1));
        assert_eq!(back.rows()[1].value(0).unwrap(), &Value::Int(-3));
    }

    #[test]
    fn cell_cmp_mirrors_value_total_order() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Int(7),
            Value::Float(7.0),
            Value::Float(f64::NAN),
            Value::Str("a".into()),
        ];
        for a in &vals {
            for b in &vals {
                let expect = a.sql_cmp(b);
                assert_eq!(
                    cell_cmp(Cell::of(a), Cell::of(b)),
                    expect,
                    "cell_cmp({a:?}, {b:?})"
                );
            }
        }
        // Int/Float cross-class numeric equality.
        assert_eq!(cell_cmp(Cell::I(7), Cell::F(7.0)), Some(Ordering::Equal));
        assert_eq!(
            cell_cmp(Cell::F(0.0), Cell::F(-0.0)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn out_of_range_column_errors() {
        let cb = ColumnarBatch::from_batch(&sample_batch()).unwrap();
        assert!(cb.column(9).is_err());
        assert!(ColumnVector::from_rows(sample_batch().rows(), 9).is_err());
    }
}
