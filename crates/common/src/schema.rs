//! Relation schemas.
//!
//! A [`Schema`] is an ordered list of [`Column`]s. Columns carry an optional
//! table qualifier so the binder can resolve `t.col` references and so join
//! output schemas stay unambiguous.

use std::fmt;
use std::sync::Arc;

use crate::error::{EvoptError, Result};
use crate::value::DataType;

/// One column of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-cased by the binder).
    pub name: String,
    /// Static type.
    pub dtype: DataType,
    /// Table (or alias) this column belongs to, when known.
    pub table: Option<String>,
    /// Whether NULLs may appear. The optimizer uses this to skip null-aware
    /// logic for NOT NULL columns.
    pub nullable: bool,
}

impl Column {
    /// A nullable column with no table qualifier.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            table: None,
            nullable: true,
        }
    }

    /// Attach a table qualifier.
    pub fn with_table(mut self, table: impl Into<String>) -> Self {
        self.table = Some(table.into());
        self
    }

    /// Mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }

    /// `table.name` when qualified, else `name`.
    pub fn qualified_name(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.qualified_name(), self.dtype)
    }
}

/// An ordered list of columns. Cheap to clone (used pervasively in plans).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema {
            columns: Arc::new(columns),
        }
    }

    /// Empty schema (zero columns), used by constant relations.
    pub fn empty() -> Self {
        Schema::default()
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Resolve a possibly-qualified column reference to an ordinal.
    ///
    /// * With a qualifier, both qualifier and name must match.
    /// * Without, the bare name must match exactly one column — an ambiguous
    ///   match is a bind error.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut hit = None;
        for (i, c) in self.columns.iter().enumerate() {
            let name_matches = c.name.eq_ignore_ascii_case(name);
            let table_matches = match (table, &c.table) {
                (Some(q), Some(t)) => t.eq_ignore_ascii_case(q),
                (Some(_), None) => false,
                (None, _) => true,
            };
            if name_matches && table_matches {
                if hit.is_some() {
                    return Err(EvoptError::Bind(format!(
                        "ambiguous column reference '{}'",
                        qualified(table, name)
                    )));
                }
                hit = Some(i);
            }
        }
        hit.ok_or_else(|| EvoptError::Bind(format!("unknown column '{}'", qualified(table, name))))
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut cols = Vec::with_capacity(self.len() + other.len());
        cols.extend_from_slice(self.columns());
        cols.extend_from_slice(other.columns());
        Schema::new(cols)
    }

    /// A new schema containing the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(indices.len());
        for &i in indices {
            let c = self
                .column(i)
                .ok_or_else(|| EvoptError::Plan(format!("projection index {i} out of range")))?;
            cols.push(c.clone());
        }
        Ok(Schema::new(cols))
    }

    /// Re-qualify every column with `alias` (used for `FROM t AS a`).
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| {
                    let mut c = c.clone();
                    c.table = Some(alias.to_owned());
                    c
                })
                .collect(),
        )
    }

    /// Data types of all columns, in order.
    pub fn types(&self) -> Vec<DataType> {
        self.columns.iter().map(|c| c.dtype).collect()
    }
}

fn qualified(table: Option<&str>, name: &str) -> String {
    match table {
        Some(t) => format!("{t}.{name}"),
        None => name.to_owned(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).with_table("t"),
            Column::new("name", DataType::Str).with_table("t"),
            Column::new("id", DataType::Int).with_table("u"),
        ])
    }

    #[test]
    fn resolve_qualified() {
        let s = sample();
        assert_eq!(s.resolve(Some("t"), "id").unwrap(), 0);
        assert_eq!(s.resolve(Some("u"), "id").unwrap(), 2);
        assert_eq!(s.resolve(Some("T"), "ID").unwrap(), 0); // case-insensitive
    }

    #[test]
    fn resolve_unqualified_unique() {
        let s = sample();
        assert_eq!(s.resolve(None, "name").unwrap(), 1);
    }

    #[test]
    fn resolve_ambiguous_is_error() {
        let s = sample();
        let e = s.resolve(None, "id").unwrap_err();
        assert_eq!(e.kind(), "bind");
        assert!(e.message().contains("ambiguous"));
    }

    #[test]
    fn resolve_unknown_is_error() {
        let s = sample();
        assert!(s.resolve(None, "nope").is_err());
        assert!(s.resolve(Some("v"), "id").is_err());
    }

    #[test]
    fn join_concatenates() {
        let a = Schema::new(vec![Column::new("x", DataType::Int)]);
        let b = Schema::new(vec![Column::new("y", DataType::Str)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.column(1).unwrap().name, "y");
    }

    #[test]
    fn project_selects_and_errors_out_of_range() {
        let s = sample();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.column(0).unwrap().table.as_deref(), Some("u"));
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn with_qualifier_rewrites_tables() {
        let s = sample().with_qualifier("a");
        assert!(s.columns().iter().all(|c| c.table.as_deref() == Some("a")));
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::new(vec![Column::new("x", DataType::Int).with_table("t")]);
        assert_eq!(s.to_string(), "(t.x: INT)");
    }
}
