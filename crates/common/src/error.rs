//! Workspace-wide error type.
//!
//! A single error enum keeps the crate graph simple (no `anyhow`-style
//! dependencies) while still carrying enough structure for callers to branch
//! on the failure class.

use std::fmt;

/// Convenient alias used across all `evopt` crates.
pub type Result<T> = std::result::Result<T, EvoptError>;

/// Every failure the engine can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvoptError {
    /// Malformed SQL text (lexing or parsing).
    Parse(String),
    /// Name resolution / typing failure while binding a query.
    Bind(String),
    /// A planner or optimizer invariant was violated.
    Plan(String),
    /// Storage layer failure (page full, invalid rid, pool exhausted, ...).
    Storage(String),
    /// Catalog failure (unknown table/index, duplicate name, ...).
    Catalog(String),
    /// Runtime execution failure (type mismatch at eval time, overflow, ...).
    Execution(String),
    /// A physical I/O operation failed (device error, possibly transient).
    Io(String),
    /// Page integrity check failed: the bytes read back do not match the
    /// checksum stamped when the page was last written (torn write, bit rot).
    Corruption(String),
    /// The query was cancelled via its cancellation token.
    Canceled(String),
    /// The query exceeded a resource budget (wall-clock timeout, max rows,
    /// max page accesses) imposed by the resource governor.
    ResourceExhausted(String),
    /// An internal invariant that should be unreachable; indicates a bug.
    Internal(String),
}

impl EvoptError {
    /// Short machine-readable class name, useful in logs and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            EvoptError::Parse(_) => "parse",
            EvoptError::Bind(_) => "bind",
            EvoptError::Plan(_) => "plan",
            EvoptError::Storage(_) => "storage",
            EvoptError::Catalog(_) => "catalog",
            EvoptError::Execution(_) => "execution",
            EvoptError::Io(_) => "io",
            EvoptError::Corruption(_) => "corruption",
            EvoptError::Canceled(_) => "canceled",
            EvoptError::ResourceExhausted(_) => "resource_exhausted",
            EvoptError::Internal(_) => "internal",
        }
    }

    /// Whether this error is one of the typed failure classes a fault-aware
    /// caller is expected to handle gracefully (as opposed to a bug class
    /// like `Internal` or a user error like `Parse`).
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            EvoptError::Io(_)
                | EvoptError::Corruption(_)
                | EvoptError::Canceled(_)
                | EvoptError::ResourceExhausted(_)
                | EvoptError::Storage(_)
        )
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            EvoptError::Parse(m)
            | EvoptError::Bind(m)
            | EvoptError::Plan(m)
            | EvoptError::Storage(m)
            | EvoptError::Catalog(m)
            | EvoptError::Execution(m)
            | EvoptError::Io(m)
            | EvoptError::Corruption(m)
            | EvoptError::Canceled(m)
            | EvoptError::ResourceExhausted(m)
            | EvoptError::Internal(m) => m,
        }
    }
}

impl fmt::Display for EvoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.kind(), self.message())
    }
}

impl std::error::Error for EvoptError {}

/// Build an [`EvoptError::Internal`] with `format!` semantics.
#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        $crate::error::EvoptError::Internal(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = EvoptError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
        assert_eq!(e.message(), "unexpected token");
    }

    #[test]
    fn fault_classes_are_distinguished_from_bug_classes() {
        assert!(EvoptError::Io("disk died".into()).is_fault());
        assert!(EvoptError::Corruption("bad crc".into()).is_fault());
        assert!(EvoptError::Canceled("user".into()).is_fault());
        assert!(EvoptError::ResourceExhausted("timeout".into()).is_fault());
        assert!(EvoptError::Storage("pool exhausted".into()).is_fault());
        assert!(!EvoptError::Internal("bug".into()).is_fault());
        assert!(!EvoptError::Parse("typo".into()).is_fault());
    }

    #[test]
    fn internal_err_macro_formats() {
        let e = internal_err!("bad page {}", 7);
        assert_eq!(e, EvoptError::Internal("bad page 7".into()));
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            EvoptError::Parse(String::new()),
            EvoptError::Bind(String::new()),
            EvoptError::Plan(String::new()),
            EvoptError::Storage(String::new()),
            EvoptError::Catalog(String::new()),
            EvoptError::Execution(String::new()),
            EvoptError::Io(String::new()),
            EvoptError::Corruption(String::new()),
            EvoptError::Canceled(String::new()),
            EvoptError::ResourceExhausted(String::new()),
            EvoptError::Internal(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
