//! Bound scalar expressions.
//!
//! An [`Expr`] refers to its input row by **column ordinal** — the SQL
//! binder resolves names to ordinals, and everything downstream (rewrites,
//! selectivity estimation, execution) works on ordinals. Three-valued SQL
//! logic is implemented throughout: comparisons with NULL yield NULL, and
//! `AND`/`OR` use Kleene semantics.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::{EvoptError, Result};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// The mirrored comparison (`a < b` ⇔ `b > a`); identity for symmetric
    /// operators. Used to normalise predicates to `col OP const` form.
    pub fn flip(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
    IsNull,
    IsNotNull,
}

/// Aggregate functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    /// `COUNT(*)` — counts rows, ignores the argument entirely.
    CountStar,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        }
    }

    /// Result type given the argument type.
    pub fn result_type(self, arg: DataType) -> Result<DataType> {
        match self {
            AggFunc::Count | AggFunc::CountStar => Ok(DataType::Int),
            AggFunc::Sum => {
                if arg.is_numeric() {
                    Ok(arg)
                } else {
                    Err(EvoptError::Bind(format!(
                        "SUM requires a numeric argument, got {arg}"
                    )))
                }
            }
            AggFunc::Avg => {
                if arg.is_numeric() {
                    Ok(DataType::Float)
                } else {
                    Err(EvoptError::Bind(format!(
                        "AVG requires a numeric argument, got {arg}"
                    )))
                }
            }
            AggFunc::Min | AggFunc::Max => Ok(arg),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A bound scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Ordinal reference into the input row.
    Column(usize),
    /// Constant.
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        input: Box<Expr>,
    },
    /// `input [NOT] LIKE pattern` with `%` and `_` wildcards.
    Like {
        input: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// `input [NOT] IN (v1, v2, ...)` — list elements are constants.
    InList {
        input: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `input [NOT] BETWEEN low AND high` (inclusive).
    Between {
        input: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
}

// ---- constructors ---------------------------------------------------------

/// `Expr::Column(i)` shorthand.
pub fn col(i: usize) -> Expr {
    Expr::Column(i)
}

/// `Expr::Literal` shorthand.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

impl Expr {
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Or, left, right)
    }

    #[allow(clippy::should_implement_trait)] // deliberate DSL constructor
    pub fn not(input: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            input: Box::new(input),
        }
    }

    /// AND together a list of conjuncts; `TRUE` for an empty list.
    pub fn conjunction(conjuncts: Vec<Expr>) -> Expr {
        let mut it = conjuncts.into_iter();
        match it.next() {
            None => lit(true),
            Some(first) => it.fold(first, Expr::and),
        }
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjuncts(&self) -> Vec<Expr> {
        let mut out = Vec::new();
        fn walk(e: &Expr, out: &mut Vec<Expr>) {
            if let Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e.clone());
            }
        }
        walk(self, &mut out);
        out
    }

    /// The set of column ordinals this expression reads.
    pub fn referenced_columns(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        self.visit_columns(&mut |i| {
            set.insert(i);
        });
        set
    }

    /// Visit every column ordinal in the tree.
    pub fn visit_columns(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Column(i) => f(*i),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { input, .. } => input.visit_columns(f),
            Expr::Like { input, .. } => input.visit_columns(f),
            Expr::InList { input, .. } => input.visit_columns(f),
            Expr::Between {
                input, low, high, ..
            } => {
                input.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
        }
    }

    /// Rewrite every column ordinal through `map` (e.g. when predicates move
    /// across a projection or from a join schema to one side's schema).
    pub fn remap_columns(&self, map: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(map(*i)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Unary { op, input } => Expr::Unary {
                op: *op,
                input: Box::new(input.remap_columns(map)),
            },
            Expr::Like {
                input,
                pattern,
                negated,
            } => Expr::Like {
                input: Box::new(input.remap_columns(map)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                input,
                list,
                negated,
            } => Expr::InList {
                input: Box::new(input.remap_columns(map)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between {
                input,
                low,
                high,
                negated,
            } => Expr::Between {
                input: Box::new(input.remap_columns(map)),
                low: Box::new(low.remap_columns(map)),
                high: Box::new(high.remap_columns(map)),
                negated: *negated,
            },
        }
    }

    /// Fallible [`remap_columns`](Expr::remap_columns): errors on the first
    /// ordinal `map` cannot translate instead of requiring callers to
    /// pre-validate (and then unwrap) in a separate pass.
    pub fn try_remap_columns(&self, map: &impl Fn(usize) -> Option<usize>) -> Result<Expr> {
        let mut missing = None;
        self.visit_columns(&mut |i| {
            if map(i).is_none() && missing.is_none() {
                missing = Some(i);
            }
        });
        if let Some(i) = missing {
            return Err(EvoptError::Plan(format!(
                "column ordinal {i} has no target under the remapping"
            )));
        }
        Ok(self.remap_columns(&|i| map(i).unwrap_or(i)))
    }

    /// True when the expression reads no columns (a constant expression).
    pub fn is_constant(&self) -> bool {
        let mut any = false;
        self.visit_columns(&mut |_| any = true);
        !any
    }

    /// Infer the result type against `schema`, validating operand types.
    pub fn data_type(&self, schema: &Schema) -> Result<DataType> {
        match self {
            Expr::Column(i) => schema
                .column(*i)
                .map(|c| c.dtype)
                .ok_or_else(|| EvoptError::Plan(format!("column ordinal {i} out of range"))),
            Expr::Literal(v) => Ok(v.data_type().unwrap_or(DataType::Int)),
            Expr::Binary { op, left, right } => {
                let lt = left.data_type(schema)?;
                let rt = right.data_type(schema)?;
                if op.is_logical() {
                    for (side, t) in [("left", lt), ("right", rt)] {
                        if t != DataType::Bool {
                            return Err(EvoptError::Bind(format!(
                                "{} operand of {} must be BOOL, got {t}",
                                side,
                                op.symbol()
                            )));
                        }
                    }
                    Ok(DataType::Bool)
                } else if op.is_comparison() {
                    lt.unify(rt).ok_or_else(|| {
                        EvoptError::Bind(format!("cannot compare {lt} with {rt}"))
                    })?;
                    Ok(DataType::Bool)
                } else {
                    let t = lt.unify(rt).filter(|t| t.is_numeric()).ok_or_else(|| {
                        EvoptError::Bind(format!("cannot apply {} to {lt} and {rt}", op.symbol()))
                    })?;
                    if *op == BinOp::Div && t == DataType::Int {
                        Ok(DataType::Int)
                    } else {
                        Ok(t)
                    }
                }
            }
            Expr::Unary { op, input } => {
                let t = input.data_type(schema)?;
                match op {
                    UnOp::Not => {
                        if t != DataType::Bool {
                            return Err(EvoptError::Bind(format!("NOT requires BOOL, got {t}")));
                        }
                        Ok(DataType::Bool)
                    }
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            return Err(EvoptError::Bind(format!(
                                "unary minus requires numeric, got {t}"
                            )));
                        }
                        Ok(t)
                    }
                    UnOp::IsNull | UnOp::IsNotNull => Ok(DataType::Bool),
                }
            }
            Expr::Like { input, .. } => {
                let t = input.data_type(schema)?;
                if t != DataType::Str {
                    return Err(EvoptError::Bind(format!("LIKE requires STRING, got {t}")));
                }
                Ok(DataType::Bool)
            }
            Expr::InList { input, list, .. } => {
                let t = input.data_type(schema)?;
                for v in list {
                    if let Some(vt) = v.data_type() {
                        if t.unify(vt).is_none() {
                            return Err(EvoptError::Bind(format!(
                                "IN list element {v} is not comparable with {t}"
                            )));
                        }
                    }
                }
                Ok(DataType::Bool)
            }
            Expr::Between {
                input, low, high, ..
            } => {
                let t = input.data_type(schema)?;
                for bound in [low, high] {
                    let bt = bound.data_type(schema)?;
                    if t.unify(bt).is_none() {
                        return Err(EvoptError::Bind(format!(
                            "BETWEEN bound type {bt} not comparable with {t}"
                        )));
                    }
                }
                Ok(DataType::Bool)
            }
        }
    }

    /// Evaluate against a tuple. Comparisons and logic follow SQL
    /// three-valued semantics, with "unknown" represented as `Value::Null`.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            Expr::Column(i) => tuple.value(*i).cloned(),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => match op {
                BinOp::And => {
                    // Kleene AND with short-circuit: FALSE AND x = FALSE.
                    let l = left.eval(tuple)?;
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = right.eval(tuple)?;
                    match (to_tristate(&l)?, to_tristate(&r)?) {
                        (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
                        (Some(true), Some(true)) => Ok(Value::Bool(true)),
                        _ => Ok(Value::Null),
                    }
                }
                BinOp::Or => {
                    let l = left.eval(tuple)?;
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = right.eval(tuple)?;
                    match (to_tristate(&l)?, to_tristate(&r)?) {
                        (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
                        (Some(false), Some(false)) => Ok(Value::Bool(false)),
                        _ => Ok(Value::Null),
                    }
                }
                _ => {
                    let l = left.eval(tuple)?;
                    let r = right.eval(tuple)?;
                    eval_binary_scalar(*op, &l, &r)
                }
            },
            Expr::Unary { op, input } => {
                let v = input.eval(tuple)?;
                match op {
                    UnOp::Not => match to_tristate(&v)? {
                        Some(b) => Ok(Value::Bool(!b)),
                        None => Ok(Value::Null),
                    },
                    UnOp::Neg => v.neg(),
                    UnOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                }
            }
            Expr::Like {
                input,
                pattern,
                negated,
            } => {
                let v = input.eval(tuple)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => {
                        let m = like_match(&s, pattern);
                        Ok(Value::Bool(m != *negated))
                    }
                    other => Err(EvoptError::Execution(format!(
                        "LIKE applied to non-string {other:?}"
                    ))),
                }
            }
            Expr::InList {
                input,
                list,
                negated,
            } => {
                let v = input.eval(tuple)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_eq(item) {
                        Some(true) => return Ok(Value::Bool(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Between {
                input,
                low,
                high,
                negated,
            } => {
                let v = input.eval(tuple)?;
                let lo = low.eval(tuple)?;
                let hi = high.eval(tuple)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                let within = match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                };
                Ok(match within {
                    Some(b) => Value::Bool(b != *negated),
                    None => Value::Null,
                })
            }
        }
    }

    /// Evaluate as a filter predicate: NULL (unknown) rejects the row.
    pub fn eval_predicate(&self, tuple: &Tuple) -> Result<bool> {
        match self.eval(tuple)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(EvoptError::Execution(format!(
                "predicate evaluated to non-boolean {other:?}"
            ))),
        }
    }

    /// Fold constant sub-expressions bottom-up. Expressions whose evaluation
    /// would error at runtime (e.g. `1/0`) are left unfolded so the error
    /// surfaces only if the row is actually evaluated.
    pub fn fold_constants(&self) -> Expr {
        let folded = match self {
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.fold_constants()),
                right: Box::new(right.fold_constants()),
            },
            Expr::Unary { op, input } => Expr::Unary {
                op: *op,
                input: Box::new(input.fold_constants()),
            },
            Expr::Like {
                input,
                pattern,
                negated,
            } => Expr::Like {
                input: Box::new(input.fold_constants()),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                input,
                list,
                negated,
            } => Expr::InList {
                input: Box::new(input.fold_constants()),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between {
                input,
                low,
                high,
                negated,
            } => Expr::Between {
                input: Box::new(input.fold_constants()),
                low: Box::new(low.fold_constants()),
                high: Box::new(high.fold_constants()),
                negated: *negated,
            },
        };
        // Identity simplifications on boolean connectives.
        if let Expr::Binary { op, left, right } = &folded {
            match op {
                BinOp::And => {
                    if **left == lit(true) {
                        return (**right).clone();
                    }
                    if **right == lit(true) {
                        return (**left).clone();
                    }
                    if **left == lit(false) || **right == lit(false) {
                        return lit(false);
                    }
                }
                BinOp::Or => {
                    if **left == lit(false) {
                        return (**right).clone();
                    }
                    if **right == lit(false) {
                        return (**left).clone();
                    }
                    if **left == lit(true) || **right == lit(true) {
                        return lit(true);
                    }
                }
                _ => {}
            }
        }
        if folded.is_constant() {
            if let Ok(v) = folded.eval(&Tuple::new(vec![])) {
                return Expr::Literal(v);
            }
        }
        folded
    }
}

/// Evaluate a non-logical binary operator on two scalar values.
fn eval_binary_scalar(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if op.is_comparison() {
        return Ok(match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => {
                let b = match op {
                    BinOp::Eq => ord == std::cmp::Ordering::Equal,
                    BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                    BinOp::Lt => ord == std::cmp::Ordering::Less,
                    BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                    BinOp::Gt => ord == std::cmp::Ordering::Greater,
                    BinOp::GtEq => ord != std::cmp::Ordering::Less,
                    _ => {
                        return Err(EvoptError::Internal(format!(
                            "{op:?} is not a comparison operator"
                        )))
                    }
                };
                Value::Bool(b)
            }
        });
    }
    match op {
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
        BinOp::Mod => l.rem(r),
        _ => Err(EvoptError::Internal(format!(
            "eval_binary_scalar got logical op {op:?}"
        ))),
    }
}

fn to_tristate(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EvoptError::Execution(format!(
            "boolean operator applied to non-boolean {other:?}"
        ))),
    }
}

/// SQL `LIKE` matcher: `%` matches any run (incl. empty), `_` any single
/// character. Iterative two-pointer algorithm with backtracking to the last
/// `%` — linear in practice, no recursion.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, matched s idx)
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, si));
            pi += 1;
        } else if let Some((sp, ss)) = star {
            pi = sp;
            si = ss + 1;
            star = Some((sp, si));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Unary { op, input } => match op {
                UnOp::Not => write!(f, "NOT ({input})"),
                UnOp::Neg => write!(f, "-({input})"),
                UnOp::IsNull => write!(f, "({input}) IS NULL"),
                UnOp::IsNotNull => write!(f, "({input}) IS NOT NULL"),
            },
            Expr::Like {
                input,
                pattern,
                negated,
            } => write!(
                f,
                "({input} {}LIKE '{pattern}')",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                input,
                list,
                negated,
            } => {
                write!(f, "({input} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("))")
            }
            Expr::Between {
                input,
                low,
                high,
                negated,
            } => write!(
                f,
                "({input} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn row(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn eval_column_and_literal() {
        let t = row(vec![Value::Int(7)]);
        assert_eq!(col(0).eval(&t).unwrap(), Value::Int(7));
        assert_eq!(lit(3i64).eval(&t).unwrap(), Value::Int(3));
        assert!(col(3).eval(&t).is_err());
    }

    #[test]
    fn comparisons_three_valued() {
        let t = row(vec![Value::Int(5), Value::Null]);
        let e = Expr::binary(BinOp::Lt, col(0), lit(10i64));
        assert_eq!(e.eval(&t).unwrap(), Value::Bool(true));
        let e = Expr::binary(BinOp::Lt, col(1), lit(10i64));
        assert_eq!(e.eval(&t).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&t).unwrap());
    }

    #[test]
    fn kleene_and_or() {
        let t = row(vec![Value::Null]);
        // FALSE AND NULL = FALSE
        let e = Expr::and(lit(false), col(0));
        assert_eq!(e.eval(&t).unwrap(), Value::Bool(false));
        // TRUE AND NULL = NULL
        let e = Expr::and(lit(true), col(0));
        assert_eq!(e.eval(&t).unwrap(), Value::Null);
        // TRUE OR NULL = TRUE
        let e = Expr::or(lit(true), col(0));
        assert_eq!(e.eval(&t).unwrap(), Value::Bool(true));
        // FALSE OR NULL = NULL
        let e = Expr::or(lit(false), col(0));
        assert_eq!(e.eval(&t).unwrap(), Value::Null);
        // NOT NULL = NULL
        let e = Expr::not(col(0));
        assert_eq!(e.eval(&t).unwrap(), Value::Null);
    }

    #[test]
    fn and_short_circuits_errors_on_right() {
        // FALSE AND (1/0 = 1) must not error.
        let bad = Expr::eq(Expr::binary(BinOp::Div, lit(1i64), lit(0i64)), lit(1i64));
        let e = Expr::and(lit(false), bad);
        assert_eq!(e.eval(&row(vec![])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn like_semantics() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(!like_match("hello", "h_list"));
        assert!(like_match("abcabc", "%abc"));
        assert!(like_match("a%b", "a%b")); // literal chars still match
        assert!(!like_match("hello", "HELLO")); // case-sensitive
    }

    #[test]
    fn like_null_and_negation() {
        let t = row(vec![Value::Null, Value::Str("abc".into())]);
        let e = Expr::Like {
            input: Box::new(col(0)),
            pattern: "a%".into(),
            negated: false,
        };
        assert_eq!(e.eval(&t).unwrap(), Value::Null);
        let e = Expr::Like {
            input: Box::new(col(1)),
            pattern: "b%".into(),
            negated: true,
        };
        assert_eq!(e.eval(&t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_three_valued() {
        let t = row(vec![Value::Int(2)]);
        let e = Expr::InList {
            input: Box::new(col(0)),
            list: vec![Value::Int(1), Value::Int(2)],
            negated: false,
        };
        assert_eq!(e.eval(&t).unwrap(), Value::Bool(true));
        // 3 NOT IN (1, NULL): unknown because NULL might equal 3.
        let e = Expr::InList {
            input: Box::new(lit(3i64)),
            list: vec![Value::Int(1), Value::Null],
            negated: true,
        };
        assert_eq!(e.eval(&t).unwrap(), Value::Null);
    }

    #[test]
    fn between_inclusive_and_null() {
        let t = row(vec![Value::Int(5)]);
        let between = |lo: i64, hi: i64, neg: bool| Expr::Between {
            input: Box::new(col(0)),
            low: Box::new(lit(lo)),
            high: Box::new(lit(hi)),
            negated: neg,
        };
        assert_eq!(between(5, 10, false).eval(&t).unwrap(), Value::Bool(true));
        assert_eq!(between(1, 5, false).eval(&t).unwrap(), Value::Bool(true));
        assert_eq!(between(6, 10, false).eval(&t).unwrap(), Value::Bool(false));
        assert_eq!(between(6, 10, true).eval(&t).unwrap(), Value::Bool(true));
        // 5 BETWEEN NULL AND 3 = FALSE (5 > 3 decides regardless of NULL).
        let e = Expr::Between {
            input: Box::new(col(0)),
            low: Box::new(lit(Value::Null)),
            high: Box::new(lit(3i64)),
            negated: false,
        };
        assert_eq!(e.eval(&t).unwrap(), Value::Bool(false));
    }

    #[test]
    fn split_and_rebuild_conjuncts() {
        let e = Expr::and(
            Expr::and(Expr::eq(col(0), lit(1i64)), Expr::eq(col(1), lit(2i64))),
            Expr::eq(col(2), lit(3i64)),
        );
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 3);
        let rebuilt = Expr::conjunction(parts);
        assert_eq!(rebuilt.split_conjuncts().len(), 3);
        assert_eq!(Expr::conjunction(vec![]), lit(true));
    }

    #[test]
    fn referenced_and_remapped_columns() {
        let e = Expr::and(Expr::eq(col(3), lit(1i64)), Expr::eq(col(5), col(3)));
        assert_eq!(
            e.referenced_columns().into_iter().collect::<Vec<_>>(),
            vec![3, 5]
        );
        let r = e.remap_columns(&|i| i - 3);
        assert_eq!(
            r.referenced_columns().into_iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn type_inference() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("s", DataType::Str),
            Column::new("b", DataType::Bool),
        ]);
        assert_eq!(
            Expr::eq(col(0), lit(1i64)).data_type(&schema).unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::binary(BinOp::Add, col(0), lit(1.5))
                .data_type(&schema)
                .unwrap(),
            DataType::Float
        );
        assert!(Expr::eq(col(0), col(1)).data_type(&schema).is_err());
        assert!(Expr::and(col(0), col(2)).data_type(&schema).is_err());
        assert!(Expr::not(col(2)).data_type(&schema).is_ok());
        assert!(Expr::binary(BinOp::Add, col(1), col(1))
            .data_type(&schema)
            .is_err());
    }

    #[test]
    fn constant_folding() {
        // (1 + 2) < 5 folds to TRUE
        let e = Expr::binary(
            BinOp::Lt,
            Expr::binary(BinOp::Add, lit(1i64), lit(2i64)),
            lit(5i64),
        );
        assert_eq!(e.fold_constants(), lit(true));
        // col0 = (2*3) folds the right side only
        let e = Expr::eq(col(0), Expr::binary(BinOp::Mul, lit(2i64), lit(3i64)));
        assert_eq!(e.fold_constants(), Expr::eq(col(0), lit(6i64)));
        // TRUE AND p folds to p
        let p = Expr::eq(col(0), lit(1i64));
        assert_eq!(Expr::and(lit(true), p.clone()).fold_constants(), p);
        // p AND FALSE folds to FALSE
        assert_eq!(
            Expr::and(p.clone(), lit(false)).fold_constants(),
            lit(false)
        );
        // 1/0 stays unfolded (errors only at runtime)
        let e = Expr::binary(BinOp::Div, lit(1i64), lit(0i64));
        assert_eq!(e.fold_constants(), e);
    }

    mod fold_props {
        use super::*;
        use proptest::prelude::*;

        /// Random expression trees over a 3-column INT row.
        fn arb_expr() -> impl Strategy<Value = Expr> {
            let leaf = prop_oneof![
                (0usize..3).prop_map(Expr::Column),
                (-20i64..20).prop_map(lit),
                any::<bool>().prop_map(lit),
            ];
            leaf.prop_recursive(4, 64, 3, |inner| {
                prop_oneof![
                    (
                        prop_oneof![
                            Just(BinOp::Add),
                            Just(BinOp::Sub),
                            Just(BinOp::Mul),
                            Just(BinOp::Eq),
                            Just(BinOp::Lt),
                            Just(BinOp::And),
                            Just(BinOp::Or),
                        ],
                        inner.clone(),
                        inner.clone()
                    )
                        .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
                    inner.clone().prop_map(|e| Expr::Unary {
                        op: UnOp::IsNull,
                        input: Box::new(e)
                    }),
                    inner.prop_map(Expr::not),
                ]
            })
        }

        proptest! {
            /// Folding never changes evaluation results (including which
            /// inputs error — modulo the fold's right to *remove* errors by
            /// short-circuiting, so we only compare Ok results).
            #[test]
            fn prop_fold_preserves_semantics(
                e in arb_expr(),
                a in -20i64..20, b in -20i64..20, c in -20i64..20) {
                let t = Tuple::new(vec![Value::Int(a), Value::Int(b), Value::Int(c)]);
                let folded = e.fold_constants();
                match (e.eval(&t), folded.eval(&t)) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "expr {} vs {}", e, folded),
                    (Err(_), _) => {} // original errors: fold may or may not
                    (Ok(x), Err(err)) => {
                        prop_assert!(false, "fold introduced error {err} for {} -> {} (value {x})", e, folded)
                    }
                }
            }

            /// Folding is idempotent.
            #[test]
            fn prop_fold_idempotent(e in arb_expr()) {
                let once = e.fold_constants();
                let twice = once.fold_constants();
                prop_assert_eq!(once, twice);
            }
        }
    }

    #[test]
    fn display_is_parsable_looking() {
        let e = Expr::and(Expr::eq(col(0), lit(1i64)), Expr::not(col(2)));
        assert_eq!(e.to_string(), "((#0 = 1) AND NOT (#2))");
    }
}
