//! Lock-ordering hierarchy with debug-build enforcement.
//!
//! The multi-session engine holds locks from several layers at once (a
//! commit walks engine → catalog → WAL → buffer pool). Deadlock freedom
//! comes from a total order over every long-lived lock in the system:
//! a thread may only acquire a lock whose rank is **strictly greater**
//! than every rank it already holds.
//!
//! The hierarchy (see DESIGN.md §11.4 for the derivation). The
//! *contention histogram* column names the `EngineMetrics` family that
//! times waits at that rank's acquisition site, where one exists
//! (DESIGN.md §12.3) — the timed wrapper lives next to the
//! `lockorder::acquire` call, so the rank table doubles as the map of
//! instrumented wait points.
//!
//! **This table is machine-readable.** `evopt-analyze` (DESIGN.md §13)
//! parses the `| rank `NAME` | … |` rows plus the `pub const` items
//! below as the source of truth for its whole-workspace lock-graph
//! verification: an `acquire` of a name missing here, a const without a
//! table row, or a histogram family with no timed acquisition site are
//! all findings. Keep the row format intact when adding a rank, and
//! keep the constants in sync (a self-test asserts the round-trip).
//!
//! | rank | lock | contention histogram |
//! |------|------|----------------------|
//! | 10 `COMMIT`        | engine commit lock (serializes write statements) | `evopt_commit_lock_wait_us` |
//! | 15 `CONFIG`        | engine session-default config | — |
//! | 18 `SNAPSHOT_CACHE`| engine cached catalog read snapshot | `evopt_snapshot_acquire_us` |
//! | 20 `CATALOG_MAP`   | catalog table namespace | — |
//! | 21 `CATALOG_NAMES` | catalog index namespace | — |
//! | 25 `TABLE_META`    | per-table index list / stats slots | — |
//! | 30 `WAL_STATE`     | WAL append state (tail buffer, LSNs) | `evopt_wal_sync_wait_us` |
//! | 32 `BTREE_WRITE`   | per-index coarse writer lock (insert/delete) | — |
//! | 33 `HEAP_META`     | per-heap tail pointer and row/page counts | — |
//! | 40 `POOL`          | buffer-pool frame table | `evopt_pool_miss_io_us`, `evopt_pool_load_wait_us` |
//! | 41 `POOL_CHECKSUM` | buffer-pool page-checksum map | — |
//! | 42 `POOL_GATE`     | buffer-pool flush-gate slot | — |
//! | 50 `WAL_GATE`      | WAL unlogged-page set (no-steal gate) | — |
//! | 51 `WAL_UNSYNCED`  | WAL appended-but-unsynced page set | — |
//! | 60 `OBS`           | observability (query log ring) | — |
//!
//! Note the perhaps surprising `WAL_STATE < POOL`: the WAL's commit path
//! holds its append state while stamping LSNs into resident pages
//! (`BufferPool::stamp_lsn`), while the pool's flush paths consult only the
//! WAL's *gate* sets (rank 50/51), never its append state — so the order is
//! acyclic even though the two layers call into each other.
//!
//! Page latches (the per-frame `RwLock<PageData>`) are leaf locks: nothing
//! *ranked* is acquired while one is held, so they are exempt from
//! ranking. (Disk I/O under a page latch is fine and deliberate — the
//! flush paths read a latched frame while writing it back.) A leaf lock's
//! field declaration carries a `// lockorder: leaf` annotation, which
//! `evopt-analyze` both honours (no unranked-acquisition finding) and
//! polices (a `lockorder::acquire` inside a leaf's hold region is a
//! finding — a false leaf claim doesn't survive CI).
//!
//! Enforcement is debug-only and costs one thread-local compare per
//! acquisition; release builds compile [`acquire`] to a no-op.

/// Engine commit lock: serializes write statements end-to-end.
pub const COMMIT: u16 = 10;
/// Engine configuration defaults.
pub const CONFIG: u16 = 15;
/// Engine cached catalog read snapshot (re-snapshots on version change;
/// ranked below the catalog maps because refreshing it calls
/// [`Catalog::snapshot`] while the cache slot is held).
pub const SNAPSHOT_CACHE: u16 = 18;
/// Catalog table namespace map.
pub const CATALOG_MAP: u16 = 20;
/// Catalog index namespace map.
pub const CATALOG_NAMES: u16 = 21;
/// Per-table metadata (index list, stats slot).
pub const TABLE_META: u16 = 25;
/// WAL append state.
pub const WAL_STATE: u16 = 30;
/// Per-index coarse writer lock (B-tree insert/delete serialization).
pub const BTREE_WRITE: u16 = 32;
/// Per-heap-file metadata (tail page pointer, row/page counts).
pub const HEAP_META: u16 = 33;
/// Buffer-pool frame table.
pub const POOL: u16 = 40;
/// Buffer-pool checksum map.
pub const POOL_CHECKSUM: u16 = 41;
/// Buffer-pool flush-gate slot.
pub const POOL_GATE: u16 = 42;
/// WAL unlogged-page set (the no-steal flush gate).
pub const WAL_GATE: u16 = 50;
/// WAL appended-but-unsynced page set (the group-commit flush gate).
pub const WAL_UNSYNCED: u16 = 51;
/// Observability structures (query log ring).
pub const OBS: u16 = 60;

/// Every rank in the hierarchy as `(const name, rank)` pairs, in
/// ascending rank order. This is the runtime half of the machine-readable
/// rank table: `evopt-analyze` parses the doc table + constants from this
/// file's *source*, and a self-test asserts that parse round-trips
/// against this list — so the analyzer can never silently drift from the
/// hierarchy the debug-build enforcement uses.
pub fn all_ranks() -> &'static [(&'static str, u16)] {
    &[
        ("COMMIT", COMMIT),
        ("CONFIG", CONFIG),
        ("SNAPSHOT_CACHE", SNAPSHOT_CACHE),
        ("CATALOG_MAP", CATALOG_MAP),
        ("CATALOG_NAMES", CATALOG_NAMES),
        ("TABLE_META", TABLE_META),
        ("WAL_STATE", WAL_STATE),
        ("BTREE_WRITE", BTREE_WRITE),
        ("HEAP_META", HEAP_META),
        ("POOL", POOL),
        ("POOL_CHECKSUM", POOL_CHECKSUM),
        ("POOL_GATE", POOL_GATE),
        ("WAL_GATE", WAL_GATE),
        ("WAL_UNSYNCED", WAL_UNSYNCED),
        ("OBS", OBS),
    ]
}

#[cfg(debug_assertions)]
thread_local! {
    /// The highest rank this thread currently holds (0 = none).
    static HELD: std::cell::Cell<u16> = const { std::cell::Cell::new(0) };
}

/// Witness that a ranked lock acquisition respected the hierarchy. Hold it
/// for exactly as long as the lock guard it accompanies; dropping it
/// restores the thread's previous rank.
#[must_use = "the rank guard must live as long as the lock guard it ranks"]
pub struct RankGuard {
    #[cfg(debug_assertions)]
    prev: u16,
}

/// Record that the current thread is about to acquire a lock of `rank`.
/// Debug builds panic if the thread already holds an equal or higher rank —
/// the canonical deadlock precondition. Release builds are a no-op.
#[inline]
pub fn acquire(rank: u16) -> RankGuard {
    #[cfg(debug_assertions)]
    {
        let prev = HELD.with(|h| {
            let prev = h.get();
            assert!(
                prev < rank,
                "lock-order violation: acquiring rank {rank} while holding rank {prev} \
                 (hierarchy: commit < config < catalog < wal-state < pool < wal-gate < obs)"
            );
            h.set(rank);
            prev
        });
        RankGuard { prev }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = rank;
        RankGuard {}
    }
}

#[cfg(debug_assertions)]
impl Drop for RankGuard {
    fn drop(&mut self) {
        HELD.with(|h| h.set(self.prev));
    }
}

/// The rank the current thread holds right now (debug builds; always 0 in
/// release). Test hook.
pub fn current_rank() -> u16 {
    #[cfg(debug_assertions)]
    {
        HELD.with(|h| h.get())
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_fine() {
        let a = acquire(COMMIT);
        let b = acquire(CATALOG_MAP);
        let c = acquire(POOL);
        assert_eq!(
            current_rank(),
            if cfg!(debug_assertions) { POOL } else { 0 }
        );
        drop(c);
        drop(b);
        drop(a);
        assert_eq!(current_rank(), 0);
    }

    #[test]
    fn release_restores_previous_rank() {
        let a = acquire(WAL_STATE);
        {
            let _b = acquire(WAL_GATE);
        }
        // After dropping the inner guard the thread may acquire anything
        // above WAL_STATE again.
        let _c = acquire(POOL);
        drop(a);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn descending_acquisition_panics_in_debug() {
        let _a = acquire(POOL);
        let _b = acquire(CATALOG_MAP);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_reacquisition_panics_in_debug() {
        let _a = acquire(WAL_STATE);
        let _b = acquire(WAL_STATE);
    }
}
