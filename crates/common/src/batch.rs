//! Row batches: the unit of data flow in the vectorized executor.
//!
//! A [`Batch`] is a schema plus an ordered run of tuples. Operators hand
//! batches (default capacity [`DEFAULT_BATCH_ROWS`]) down the plan tree
//! instead of single rows, so per-call overhead — virtual dispatch,
//! instrumentation stamps, governor checks — is paid once per batch rather
//! than once per tuple.
//!
//! Contract observed by the execution layer: a produced batch is never
//! empty (`None` signals exhaustion), and it never exceeds the executor
//! environment's configured batch capacity.

use crate::schema::Schema;
use crate::tuple::Tuple;

/// Default rows per batch. Large enough to amortize per-batch overhead to
/// noise, small enough that a batch of wide tuples stays cache-friendly
/// and a governed kill lands promptly.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// An ordered run of rows sharing one schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Batch {
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Batch {
        Batch { schema, rows }
    }

    /// An empty batch with room for `capacity` rows.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Batch {
        Batch {
            schema,
            rows: Vec::with_capacity(capacity),
        }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn push(&mut self, row: Tuple) {
        self.rows.push(row);
    }

    /// Keep only the first `n` rows (no-op when already shorter).
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.rows.iter()
    }

    /// Give up the rows, dropping the schema.
    pub fn into_rows(self) -> Vec<Tuple> {
        self.rows
    }

    /// Split into schema and rows (for operators that rebuild the batch
    /// after a row-wise transform).
    pub fn into_parts(self) -> (Schema, Vec<Tuple>) {
        (self.schema, self.rows)
    }
}

impl IntoIterator for Batch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    #[test]
    fn push_truncate_and_drain() {
        let mut b = Batch::with_capacity(Schema::empty(), 4);
        assert!(b.is_empty());
        for i in 0..4 {
            b.push(row(i));
        }
        assert_eq!(b.len(), 4);
        b.truncate(2);
        assert_eq!(b.len(), 2);
        b.truncate(10); // no-op past the end
        assert_eq!(b.into_rows(), vec![row(0), row(1)]);
    }

    #[test]
    fn iteration_orders_match() {
        let b = Batch::new(Schema::empty(), vec![row(3), row(1), row(2)]);
        let by_ref: Vec<i64> = b
            .iter()
            .map(|t| t.value(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(by_ref, vec![3, 1, 2]);
        let owned: Vec<Tuple> = b.into_iter().collect();
        assert_eq!(owned, vec![row(3), row(1), row(2)]);
    }
}
