//! Join operators.
//!
//! Five physical joins, each with the I/O behaviour its cost formula
//! assumes:
//!
//! * [`NestedLoopJoinExec`] — re-opens the inner plan per outer row.
//! * [`BlockNestedLoopJoinExec`] — materialises the inner to a temporary
//!   heap once, then re-reads it once per outer *block*.
//! * [`IndexNestedLoopJoinExec`] — probes a B+-tree per outer row.
//! * [`SortMergeJoinExec`] — linear merge of two key-sorted inputs
//!   (duplicate groups handled; the optimizer inserts any needed sorts).
//! * [`HashJoinExec`] — in-memory build when the build side fits the
//!   configured buffer budget, Grace partitioning to temporary heaps when
//!   it doesn't.
//!
//! All five consume and produce [`Batch`]es: inputs arrive through
//! [`BatchCursor`]s (one virtual call per input batch), matches accumulate
//! in a [`BatchBuilder`] and flush in capped batches, so a probe that fans
//! out to many matches still never emits an oversized batch.
//!
//! SQL join semantics: NULL keys never match.

use std::collections::HashMap;
use std::sync::Arc;

use evopt_catalog::TableInfo;
use evopt_common::columnar::ColumnVector;
use evopt_common::{Batch, EvoptError, Expr, Result, Schema, Tuple, Value};
use evopt_storage::heap::HeapScan;
use evopt_storage::HeapFile;

use crate::columnar::JoinKeyMap;
use crate::executor::{invariant, BatchBuilder, BatchCursor, ExecEnv, Executor};

/// Usable bytes per page for blocking decisions.
const USABLE_PAGE_BYTES: usize = 4084;

fn passes(residual: &Option<Expr>, t: &Tuple) -> Result<bool> {
    match residual {
        Some(p) => p.eval_predicate(t),
        None => Ok(true),
    }
}

// ---------------------------------------------------------------------------
// Tuple nested loops
// ---------------------------------------------------------------------------

/// Factory that (re-)instantiates a nested-loop join's inner plan. The
/// executor builder supplies one so instrumented runs can rebind every
/// re-open to the same metric slots.
pub type RightBuilder = Box<dyn Fn() -> Result<Box<dyn Executor>>>;

/// For each outer tuple, re-open and drain the inner plan batch by batch.
pub struct NestedLoopJoinExec {
    left: BatchCursor,
    right_builder: RightBuilder,
    predicate: Option<Expr>,
    schema: Schema,
    current_left: Option<Tuple>,
    right: Option<Box<dyn Executor>>,
    out: BatchBuilder,
}

impl NestedLoopJoinExec {
    pub fn new(
        left: Box<dyn Executor>,
        right_builder: RightBuilder,
        predicate: Option<Expr>,
        schema: Schema,
        batch_rows: usize,
    ) -> Self {
        NestedLoopJoinExec {
            left: BatchCursor::new(left),
            right_builder,
            predicate,
            out: BatchBuilder::new(schema.clone(), batch_rows),
            schema,
            current_left: None,
            right: None,
        }
    }
}

impl Executor for NestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.out.full() {
                return Ok(self.out.flush());
            }
            if self.current_left.is_none() {
                match self.left.next_row()? {
                    Some(t) => {
                        self.current_left = Some(t);
                        self.right = Some((self.right_builder)()?);
                    }
                    // Outer exhausted: drain whatever is buffered.
                    None => return Ok(self.out.flush()),
                }
            }
            let lt = invariant(
                self.current_left.as_ref(),
                "outer row set before inner drain",
            )?;
            let right = invariant(self.right.as_mut(), "inner opened with outer row")?;
            match right.next_batch()? {
                Some(rb) => {
                    for rt in rb.iter() {
                        let combined = lt.join(rt);
                        if passes(&self.predicate, &combined)? {
                            self.out.push(combined);
                        }
                    }
                }
                None => self.current_left = None,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Block nested loops
// ---------------------------------------------------------------------------

/// Materialise the inner once; stream the outer in blocks of
/// `(block_pages - 2)` pages; scan the inner once per block, joining each
/// inner row against the whole resident block.
pub struct BlockNestedLoopJoinExec {
    left: BatchCursor,
    right: Option<Box<dyn Executor>>,
    env: ExecEnv,
    predicate: Option<Expr>,
    block_bytes: usize,
    schema: Schema,
    temp: Option<Arc<HeapFile>>,
    block: Vec<Tuple>,
    left_done: bool,
    inner_scan: Option<HeapScan>,
    out: BatchBuilder,
}

impl BlockNestedLoopJoinExec {
    pub fn new(
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        env: ExecEnv,
        predicate: Option<Expr>,
        block_pages: usize,
        schema: Schema,
    ) -> Self {
        let block_bytes = block_pages.saturating_sub(2).max(1) * USABLE_PAGE_BYTES;
        BlockNestedLoopJoinExec {
            left: BatchCursor::new(left),
            right: Some(right),
            predicate,
            block_bytes,
            out: BatchBuilder::new(schema.clone(), env.batch_rows),
            env,
            schema,
            temp: None,
            block: Vec::new(),
            left_done: false,
            inner_scan: None,
        }
    }

    fn materialise_inner(&mut self) -> Result<()> {
        let heap = Arc::new(HeapFile::create(Arc::clone(self.env.catalog.pool()))?);
        let mut right = invariant(self.right.take(), "inner materialised only once")?;
        while let Some(batch) = right.next_batch()? {
            for t in batch.iter() {
                heap.insert(t)?;
            }
        }
        self.temp = Some(heap);
        Ok(())
    }

    fn load_block(&mut self) -> Result<bool> {
        self.block.clear();
        if self.left_done {
            return Ok(false);
        }
        let mut bytes = 0usize;
        while bytes < self.block_bytes {
            match self.left.next_row()? {
                Some(t) => {
                    bytes += t.encoded_len();
                    self.block.push(t);
                }
                None => {
                    self.left_done = true;
                    break;
                }
            }
        }
        Ok(!self.block.is_empty())
    }
}

impl Executor for BlockNestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.temp.is_none() {
            self.materialise_inner()?;
            if !self.load_block()? {
                return Ok(None);
            }
            self.inner_scan = Some(invariant(self.temp.as_ref(), "inner heap built")?.scan());
        }
        loop {
            if self.out.full() {
                return Ok(self.out.flush());
            }
            let scan = invariant(self.inner_scan.as_mut(), "inner scan open")?;
            match scan.next().transpose()? {
                Some((_, rt)) => {
                    for lt in &self.block {
                        let combined = lt.join(&rt);
                        if passes(&self.predicate, &combined)? {
                            self.out.push(combined);
                        }
                    }
                }
                None => {
                    // Inner exhausted for this block: next block.
                    if !self.load_block()? {
                        return Ok(self.out.flush());
                    }
                    self.inner_scan =
                        Some(invariant(self.temp.as_ref(), "inner heap built")?.scan());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Index nested loops
// ---------------------------------------------------------------------------

/// Probe a B+-tree on the inner base table per outer row.
pub struct IndexNestedLoopJoinExec {
    outer: BatchCursor,
    inner: Arc<TableInfo>,
    index: Arc<evopt_catalog::IndexInfo>,
    outer_key: usize,
    residual: Option<Expr>,
    schema: Schema,
    out: BatchBuilder,
}

impl IndexNestedLoopJoinExec {
    pub fn new(
        outer: Box<dyn Executor>,
        env: &ExecEnv,
        inner_table: &str,
        index: &str,
        outer_key: usize,
        residual: Option<Expr>,
        schema: Schema,
    ) -> Result<Self> {
        let inner = env.catalog.table(inner_table)?;
        let index = inner
            .indexes()
            .into_iter()
            .find(|i| i.name == index)
            .ok_or_else(|| {
                EvoptError::Execution(format!("unknown index '{index}' on '{inner_table}'"))
            })?;
        Ok(IndexNestedLoopJoinExec {
            outer: BatchCursor::new(outer),
            inner,
            index,
            outer_key,
            residual,
            out: BatchBuilder::new(schema.clone(), env.batch_rows),
            schema,
        })
    }
}

impl Executor for IndexNestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.out.full() {
                return Ok(self.out.flush());
            }
            let Some(lt) = self.outer.next_row()? else {
                return Ok(self.out.flush());
            };
            let key = lt.value(self.outer_key)?;
            if key.is_null() {
                continue;
            }
            for rid in self.index.btree.search_eq(key)? {
                let rt = self.inner.heap.get(rid)?.ok_or_else(|| {
                    EvoptError::Execution(format!("index points at deleted rid {rid}"))
                })?;
                let combined = lt.join(&rt);
                if passes(&self.residual, &combined)? {
                    self.out.push(combined);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sort-merge join
// ---------------------------------------------------------------------------

/// Linear merge of two inputs sorted ascending on their keys.
pub struct SortMergeJoinExec {
    left: BatchCursor,
    right: BatchCursor,
    left_key: usize,
    right_key: usize,
    residual: Option<Expr>,
    schema: Schema,
    group: Vec<Tuple>,
    group_key: Option<Value>,
    lookahead: Option<Tuple>,
    right_done: bool,
    out: BatchBuilder,
}

impl SortMergeJoinExec {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
        schema: Schema,
        batch_rows: usize,
    ) -> Self {
        SortMergeJoinExec {
            left: BatchCursor::new(left),
            right: BatchCursor::new(right),
            left_key,
            right_key,
            residual,
            out: BatchBuilder::new(schema.clone(), batch_rows),
            schema,
            group: Vec::new(),
            group_key: None,
            lookahead: None,
            right_done: false,
        }
    }

    /// Load the next duplicate group from the right input. Returns false
    /// when the right side is exhausted.
    fn advance_group(&mut self) -> Result<bool> {
        self.group.clear();
        self.group_key = None;
        // First tuple of the group (skipping NULL keys).
        let first = loop {
            let t = match self.lookahead.take() {
                Some(t) => Some(t),
                None => self.right.next_row()?,
            };
            match t {
                None => {
                    self.right_done = true;
                    return Ok(false);
                }
                Some(t) => {
                    if t.value(self.right_key)?.is_null() {
                        continue;
                    }
                    break t;
                }
            }
        };
        let key = first.value(self.right_key)?.clone();
        self.group.push(first);
        // Absorb duplicates.
        loop {
            match self.right.next_row()? {
                None => {
                    self.right_done = true;
                    break;
                }
                Some(t) => {
                    let k = t.value(self.right_key)?;
                    if k.is_null() {
                        continue;
                    }
                    // Key equality is SQL equality, not the derived `Eq`
                    // (whose `Null == Null` would be wrong for join keys).
                    // NULLs were skipped above, so both agree here — but
                    // routing through `sql_key_eq` keeps that a fact of
                    // the comparison, not of the surrounding control flow.
                    if k.sql_key_eq(&key) {
                        self.group.push(t);
                    } else {
                        self.lookahead = Some(t);
                        break;
                    }
                }
            }
        }
        self.group_key = Some(key);
        Ok(true)
    }
}

impl Executor for SortMergeJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.out.full() {
                return Ok(self.out.flush());
            }
            let Some(lt) = self.left.next_row()? else {
                return Ok(self.out.flush());
            };
            let lkey = lt.value(self.left_key)?.clone();
            if lkey.is_null() {
                continue;
            }
            // Advance the right group until its key >= left key. Both keys
            // are non-null here, so `sql_cmp` always answers; a NULL would
            // have no defined merge position (which is why both sides skip
            // NULL keys before ever comparing).
            while self.group_key.as_ref().map_or(!self.right_done, |k| {
                k.sql_cmp(&lkey) == Some(std::cmp::Ordering::Less)
            }) {
                if !self.advance_group()? {
                    break;
                }
            }
            // Emit every match of this left row (the group stays resident
            // for following duplicates on the left). SQL key equality:
            // NULL never matches (see `Value::sql_key_eq`).
            if self.group_key.as_ref().is_some_and(|k| k.sql_key_eq(&lkey)) {
                for rt in &self.group {
                    let combined = lt.join(rt);
                    if passes(&self.residual, &combined)? {
                        self.out.push(combined);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hash join (in-memory or Grace)
// ---------------------------------------------------------------------------

enum HashJoinState {
    /// Not started.
    Init,
    /// Build side fit in memory (row mode). NULL build keys were filtered
    /// before insertion, so the map's derived `Value` equality coincides
    /// with SQL key equality on everything it holds; NULL probe keys are
    /// rejected in `probe_matches`.
    InMemory { map: HashMap<Value, Vec<Tuple>> },
    /// Build side fit in memory (columnar mode): build rows plus a typed
    /// key index. The [`JoinKeyMap`] owns the NULL-never-matches rule.
    InMemoryColumnar { rows: Vec<Tuple>, keys: JoinKeyMap },
    /// Grace: both sides partitioned to temp heaps; joined per partition.
    Grace {
        left_parts: Vec<Arc<HeapFile>>,
        right_parts: Vec<Arc<HeapFile>>,
        part: usize,
        map: HashMap<Value, Vec<Tuple>>,
        probe: Option<HeapScan>,
    },
}

/// Hash join: builds on the right input, probes with the left (probe order
/// — and therefore any left sort order — is preserved).
pub struct HashJoinExec {
    left: Option<Box<dyn Executor>>,
    right: Option<Box<dyn Executor>>,
    env: ExecEnv,
    left_key: usize,
    right_key: usize,
    residual: Option<Expr>,
    schema: Schema,
    state: HashJoinState,
    out: BatchBuilder,
}

impl HashJoinExec {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        env: ExecEnv,
        left_key: usize,
        right_key: usize,
        residual: Option<Expr>,
        schema: Schema,
    ) -> Self {
        HashJoinExec {
            left: Some(left),
            right: Some(right),
            left_key,
            right_key,
            residual,
            out: BatchBuilder::new(schema.clone(), env.batch_rows),
            env,
            schema,
            state: HashJoinState::Init,
        }
    }

    fn build(&mut self) -> Result<()> {
        let mut right = invariant(self.right.take(), "build side consumed only once")?;
        let mut build_rows: Vec<Tuple> = Vec::new();
        let mut bytes = 0usize;
        while let Some(batch) = right.next_batch()? {
            for t in batch.into_rows() {
                if t.value(self.right_key)?.is_null() {
                    continue;
                }
                bytes += t.encoded_len();
                build_rows.push(t);
            }
        }
        let budget = self.env.buffer_pages.max(3) * USABLE_PAGE_BYTES;
        if bytes <= budget {
            if self.env.columnar {
                // Typed key index over the build rows; keys are hashed as
                // native i64/f64-bits/str instead of `Value` enums.
                let keys = JoinKeyMap::build(&build_rows, self.right_key)?;
                self.state = HashJoinState::InMemoryColumnar {
                    rows: build_rows,
                    keys,
                };
                return Ok(());
            }
            let mut map: HashMap<Value, Vec<Tuple>> = HashMap::new();
            for t in build_rows {
                let k = t.value(self.right_key)?.clone();
                map.entry(k).or_default().push(t);
            }
            self.state = HashJoinState::InMemory { map };
            return Ok(());
        }
        // Grace: partition both sides so each build partition fits.
        self.env.record_spill();
        let parts = (bytes / budget + 2).max(2);
        let pool = self.env.catalog.pool();
        let mk_parts = || -> Result<Vec<Arc<HeapFile>>> {
            (0..parts)
                .map(|_| Ok(Arc::new(HeapFile::create(Arc::clone(pool))?)))
                .collect()
        };
        let right_parts = mk_parts()?;
        for t in build_rows {
            let k = t.value(self.right_key)?;
            right_parts[partition_of(k, parts)].insert(&t)?;
        }
        let left_parts = mk_parts()?;
        let mut left = invariant(self.left.take(), "probe side present for Grace split")?;
        while let Some(batch) = left.next_batch()? {
            for t in batch.iter() {
                let k = t.value(self.left_key)?;
                if k.is_null() {
                    continue;
                }
                left_parts[partition_of(k, parts)].insert(t)?;
            }
        }
        self.state = HashJoinState::Grace {
            left_parts,
            right_parts,
            part: 0,
            map: HashMap::new(),
            probe: None,
        };
        Ok(())
    }

    fn probe_matches(
        map: &HashMap<Value, Vec<Tuple>>,
        lt: &Tuple,
        left_key: usize,
        residual: &Option<Expr>,
        out: &mut BatchBuilder,
    ) -> Result<()> {
        let k = lt.value(left_key)?;
        if k.is_null() {
            return Ok(());
        }
        if let Some(matches) = map.get(k) {
            for rt in matches {
                let combined = lt.join(rt);
                if passes(residual, &combined)? {
                    out.push(combined);
                }
            }
        }
        Ok(())
    }
}

fn partition_of(v: &Value, parts: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    (h.finish() as usize) % parts
}

impl Executor for HashJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if matches!(self.state, HashJoinState::Init) {
            self.build()?;
        }
        loop {
            if self.out.full() {
                return Ok(self.out.flush());
            }
            match &mut self.state {
                HashJoinState::Init => {
                    return Err(EvoptError::Internal("hash join probed before build".into()))
                }
                HashJoinState::InMemory { map } => {
                    let left = invariant(self.left.as_mut(), "in-memory join keeps probe side")?;
                    match left.next_batch()? {
                        Some(batch) => {
                            for lt in batch.iter() {
                                Self::probe_matches(
                                    map,
                                    lt,
                                    self.left_key,
                                    &self.residual,
                                    &mut self.out,
                                )?;
                            }
                        }
                        None => return Ok(self.out.flush()),
                    }
                }
                HashJoinState::InMemoryColumnar { rows, keys } => {
                    let left = invariant(self.left.as_mut(), "in-memory join keeps probe side")?;
                    match left.next_batch()? {
                        Some(batch) => {
                            // Extract the probe key column once per batch,
                            // then look each key cell up in the typed index.
                            let probe_rows = batch.rows();
                            let key_col = ColumnVector::from_rows(probe_rows, self.left_key)?;
                            for (i, lt) in probe_rows.iter().enumerate() {
                                let matches = keys.lookup(key_col.cell(i), rows, self.right_key)?;
                                for &ri in matches {
                                    let combined = lt.join(&rows[ri as usize]);
                                    if passes(&self.residual, &combined)? {
                                        self.out.push(combined);
                                    }
                                }
                            }
                        }
                        None => return Ok(self.out.flush()),
                    }
                }
                HashJoinState::Grace {
                    left_parts,
                    right_parts,
                    part,
                    map,
                    probe,
                } => {
                    if probe.is_none() {
                        if *part >= left_parts.len() {
                            return Ok(self.out.flush());
                        }
                        // Build this partition's map.
                        map.clear();
                        for item in right_parts[*part].scan() {
                            let (_, t) = item?;
                            let k = t.value(self.right_key)?.clone();
                            map.entry(k).or_default().push(t);
                        }
                        *probe = Some(left_parts[*part].scan());
                        *part += 1;
                    }
                    let scan = invariant(probe.as_mut(), "partition probe scan open")?;
                    match scan.next().transpose()? {
                        Some((_, lt)) => {
                            Self::probe_matches(
                                map,
                                &lt,
                                self.left_key,
                                &self.residual,
                                &mut self.out,
                            )?;
                        }
                        None => *probe = None,
                    }
                }
            }
        }
    }
}
