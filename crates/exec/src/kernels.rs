//! Type-specialized predicate kernels over columnar data.
//!
//! [`compile_predicate`] lowers a bound [`Expr`] into a [`Kernel`] tree of
//! comparison atoms when the predicate's shape is supported (comparisons of
//! a column against a constant or another column, `IS [NOT] NULL`,
//! `BETWEEN`/`IN` on constants, and any `AND`/`OR`/`NOT` combination of
//! those). Unsupported shapes (`LIKE`, arithmetic inside comparisons, ...)
//! return `None` and the operator falls back to row-at-a-time
//! `Expr::eval_predicate` — slower, never wrong.
//!
//! Evaluation produces a **selection vector**: the input row indices on
//! which the predicate is `TRUE`. This collapses SQL's three-valued logic
//! into the filter contract (`NULL` rejects like `FALSE`), which is exactly
//! why `AND` becomes selection intersection and `OR` selection union:
//!
//! * `a AND b` is `TRUE` iff both conjuncts are `TRUE` — chain the atoms,
//!   each narrowing the previous selection.
//! * `a OR b` is `TRUE` iff either disjunct is `TRUE` — union the
//!   selections each atom accepts.
//! * `NOT` pushes onto atoms by inverting the comparison (`NOT (a < b)` ⇔
//!   `a >= b` under three-valued logic: both map NULL to NULL) and De
//!   Morgan over `AND`/`OR`, which Kleene logic preserves.
//!
//! Each comparison atom dispatches once on the column representation and
//! then runs a tight loop over the typed vector — `i64`/`f64`/`bool`/`&str`
//! comparisons instead of per-row `Value` enum dispatch. The generic arm
//! (mixed-variant [`ColumnData::Any`] columns, cross-class constants) goes
//! through [`cell_cmp`], which mirrors `Value::sql_cmp` exactly.

use std::cmp::Ordering;

use evopt_common::columnar::{cell_cmp, Cell, ColumnData, ColumnVector};
use evopt_common::{BinOp, EvoptError, Expr, Result, UnOp, Value};

/// Right-hand side of a comparison atom.
#[derive(Debug, Clone)]
pub enum Rhs {
    Const(Value),
    Col(usize),
}

/// A compiled predicate: atoms plus boolean structure.
#[derive(Debug, Clone)]
pub enum Kernel {
    /// `col <op> rhs` where `op` is a comparison; NULL on either side
    /// rejects the row.
    Cmp {
        op: BinOp,
        left: usize,
        rhs: Rhs,
    },
    /// `col IS [NOT] NULL`.
    IsNull {
        col: usize,
        negated: bool,
    },
    /// Constant outcome (e.g. `x NOT IN (..., NULL, ...)` can never be
    /// TRUE).
    Const(bool),
    And(Vec<Kernel>),
    Or(Vec<Kernel>),
}

/// Compile `expr` to a kernel tree, or `None` when its shape is not
/// supported by the typed kernels.
pub fn compile_predicate(expr: &Expr) -> Option<Kernel> {
    match expr {
        Expr::Literal(Value::Bool(b)) => Some(Kernel::Const(*b)),
        // A literal NULL predicate is unknown everywhere: rejects all rows.
        Expr::Literal(Value::Null) => Some(Kernel::Const(false)),
        Expr::Binary { op, left, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(i), Expr::Literal(v)) => Some(Kernel::Cmp {
                    op: *op,
                    left: *i,
                    rhs: Rhs::Const(v.clone()),
                }),
                (Expr::Literal(v), Expr::Column(i)) => Some(Kernel::Cmp {
                    op: op.flip(),
                    left: *i,
                    rhs: Rhs::Const(v.clone()),
                }),
                (Expr::Column(i), Expr::Column(j)) => Some(Kernel::Cmp {
                    op: *op,
                    left: *i,
                    rhs: Rhs::Col(*j),
                }),
                _ => None,
            }
        }
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => Some(Kernel::And(vec![
            compile_predicate(left)?,
            compile_predicate(right)?,
        ])),
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => Some(Kernel::Or(vec![
            compile_predicate(left)?,
            compile_predicate(right)?,
        ])),
        Expr::Unary {
            op: UnOp::IsNull,
            input,
        } => match input.as_ref() {
            Expr::Column(i) => Some(Kernel::IsNull {
                col: *i,
                negated: false,
            }),
            _ => None,
        },
        Expr::Unary {
            op: UnOp::IsNotNull,
            input,
        } => match input.as_ref() {
            Expr::Column(i) => Some(Kernel::IsNull {
                col: *i,
                negated: true,
            }),
            _ => None,
        },
        Expr::Unary {
            op: UnOp::Not,
            input,
        } => compile_predicate(input).map(negate),
        // `x BETWEEN lo AND hi` ⇔ `x >= lo AND x <= hi` in predicate
        // context (a NULL bound makes the undecided side unknown, which
        // rejects — same as the conjunction). The negated form is the De
        // Morgan dual `x < lo OR x > hi`.
        Expr::Between {
            input,
            low,
            high,
            negated,
        } => match (input.as_ref(), low.as_ref(), high.as_ref()) {
            (Expr::Column(i), Expr::Literal(lo), Expr::Literal(hi)) => {
                let (op_lo, op_hi) = if *negated {
                    (BinOp::Lt, BinOp::Gt)
                } else {
                    (BinOp::GtEq, BinOp::LtEq)
                };
                let atoms = vec![
                    Kernel::Cmp {
                        op: op_lo,
                        left: *i,
                        rhs: Rhs::Const(lo.clone()),
                    },
                    Kernel::Cmp {
                        op: op_hi,
                        left: *i,
                        rhs: Rhs::Const(hi.clone()),
                    },
                ];
                Some(if *negated {
                    Kernel::Or(atoms)
                } else {
                    Kernel::And(atoms)
                })
            }
            _ => None,
        },
        // `x IN (a, b)` is TRUE iff x equals some element; a NULL element
        // only contributes unknown, which the union already rejects. The
        // negated form is TRUE iff x differs from *every* element, so one
        // NULL element makes it unsatisfiable.
        Expr::InList {
            input,
            list,
            negated,
        } => match input.as_ref() {
            Expr::Column(i) => {
                if *negated {
                    if list.iter().any(Value::is_null) {
                        return Some(Kernel::Const(false));
                    }
                    Some(Kernel::And(
                        list.iter()
                            .map(|v| Kernel::Cmp {
                                op: BinOp::NotEq,
                                left: *i,
                                rhs: Rhs::Const(v.clone()),
                            })
                            .collect(),
                    ))
                } else {
                    Some(Kernel::Or(
                        list.iter()
                            .map(|v| Kernel::Cmp {
                                op: BinOp::Eq,
                                left: *i,
                                rhs: Rhs::Const(v.clone()),
                            })
                            .collect(),
                    ))
                }
            }
            _ => None,
        },
        _ => None,
    }
}

/// Kernel-level negation under three-valued logic (see module docs).
fn negate(k: Kernel) -> Kernel {
    match k {
        Kernel::Cmp { op, left, rhs } => Kernel::Cmp {
            op: match op {
                BinOp::Eq => BinOp::NotEq,
                BinOp::NotEq => BinOp::Eq,
                BinOp::Lt => BinOp::GtEq,
                BinOp::LtEq => BinOp::Gt,
                BinOp::Gt => BinOp::LtEq,
                BinOp::GtEq => BinOp::Lt,
                other => other, // unreachable: atoms hold comparisons only
            },
            left,
            rhs,
        },
        Kernel::IsNull { col, negated } => Kernel::IsNull {
            col,
            negated: !negated,
        },
        Kernel::Const(b) => Kernel::Const(!b),
        Kernel::And(ks) => Kernel::Or(ks.into_iter().map(negate).collect()),
        Kernel::Or(ks) => Kernel::And(ks.into_iter().map(negate).collect()),
    }
}

impl Kernel {
    /// Column ordinals the kernel reads (callers extract exactly these).
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.visit_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn visit_columns(&self, out: &mut Vec<usize>) {
        match self {
            Kernel::Cmp { left, rhs, .. } => {
                out.push(*left);
                if let Rhs::Col(j) = rhs {
                    out.push(*j);
                }
            }
            Kernel::IsNull { col, .. } => out.push(*col),
            Kernel::Const(_) => {}
            Kernel::And(ks) | Kernel::Or(ks) => {
                for k in ks {
                    k.visit_columns(out);
                }
            }
        }
    }

    /// Evaluate over the extracted columns: `sel` is the candidate row
    /// indices (sorted ascending); the returned vector is the subset on
    /// which the predicate is TRUE, in the same order.
    pub fn eval(&self, cols: &[Option<ColumnVector>], sel: &[u32]) -> Result<Vec<u32>> {
        match self {
            Kernel::Const(true) => Ok(sel.to_vec()),
            Kernel::Const(false) => Ok(Vec::new()),
            Kernel::IsNull { col, negated } => {
                let c = column(cols, *col)?;
                Ok(sel
                    .iter()
                    .copied()
                    .filter(|&i| c.validity.is_valid(i as usize) == *negated)
                    .collect())
            }
            Kernel::And(ks) => {
                let mut current = sel.to_vec();
                for k in ks {
                    if current.is_empty() {
                        break;
                    }
                    current = k.eval(cols, &current)?;
                }
                Ok(current)
            }
            Kernel::Or(ks) => {
                // Union of the disjuncts' selections, in input order. Each
                // disjunct's output is a subset of `sel`, so the highest
                // candidate index bounds the scratch bitmap.
                let len = sel.iter().map(|&i| i as usize + 1).max().unwrap_or(0);
                let mut accepted = vec![false; len];
                for k in ks {
                    for i in k.eval(cols, sel)? {
                        accepted[i as usize] = true;
                    }
                }
                Ok(sel
                    .iter()
                    .copied()
                    .filter(|&i| accepted[i as usize])
                    .collect())
            }
            Kernel::Cmp { op, left, rhs } => {
                let lc = column(cols, *left)?;
                match rhs {
                    Rhs::Const(c) => cmp_const(*op, lc, c, sel),
                    Rhs::Col(j) => cmp_cols(*op, lc, column(cols, *j)?, sel),
                }
            }
        }
    }
}

fn column(cols: &[Option<ColumnVector>], i: usize) -> Result<&ColumnVector> {
    cols.get(i)
        .and_then(Option::as_ref)
        .ok_or_else(|| EvoptError::Internal(format!("kernel references unextracted column {i}")))
}

/// Does `ord` satisfy the comparison `op`? Mirrors `eval_binary_scalar`.
fn ord_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::NotEq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::LtEq => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::GtEq => ord != Ordering::Less,
        // Atoms only hold comparisons; any other op accepts nothing.
        _ => false,
    }
}

/// Filter `sel` by `cmp(i)`, keeping rows where the ordering satisfies
/// `op`. `cmp` returns `None` for NULL (rejected, like `sql_cmp`).
fn filter_by<F: Fn(usize) -> Option<Ordering>>(op: BinOp, sel: &[u32], cmp: F) -> Result<Vec<u32>> {
    Ok(sel
        .iter()
        .copied()
        .filter(|&i| cmp(i as usize).is_some_and(|o| ord_matches(op, o)))
        .collect())
}

/// Column vs constant: one dispatch on the representation pair, then a
/// tight typed loop.
fn cmp_const(op: BinOp, lc: &ColumnVector, c: &Value, sel: &[u32]) -> Result<Vec<u32>> {
    if c.is_null() {
        // Comparison with NULL is unknown for every row.
        return Ok(Vec::new());
    }
    let valid = &lc.validity;
    match (&lc.data, c) {
        (ColumnData::Int(xs), Value::Int(y)) => {
            filter_by(op, sel, |i| valid.is_valid(i).then(|| xs[i].cmp(y)))
        }
        (ColumnData::Int(xs), Value::Float(y)) => filter_by(op, sel, |i| {
            valid.is_valid(i).then(|| (xs[i] as f64).total_cmp(y))
        }),
        (ColumnData::Float(xs), Value::Int(y)) => {
            let yf = *y as f64;
            filter_by(op, sel, |i| valid.is_valid(i).then(|| xs[i].total_cmp(&yf)))
        }
        (ColumnData::Float(xs), Value::Float(y)) => {
            filter_by(op, sel, |i| valid.is_valid(i).then(|| xs[i].total_cmp(y)))
        }
        (ColumnData::Str(xs), Value::Str(y)) => filter_by(op, sel, |i| {
            valid.is_valid(i).then(|| xs[i].as_str().cmp(y.as_str()))
        }),
        (ColumnData::Bool(xs), Value::Bool(y)) => {
            filter_by(op, sel, |i| valid.is_valid(i).then(|| xs[i].cmp(y)))
        }
        // Mixed-variant columns or cross-class constants: exact generic
        // path through cell_cmp (≡ Value::sql_cmp).
        _ => {
            let cc = Cell::of(c);
            filter_by(op, sel, |i| cell_cmp(lc.cell(i), cc))
        }
    }
}

/// Column vs column.
fn cmp_cols(op: BinOp, lc: &ColumnVector, rc: &ColumnVector, sel: &[u32]) -> Result<Vec<u32>> {
    let (lv, rv) = (&lc.validity, &rc.validity);
    let both = |i: usize| lv.is_valid(i) && rv.is_valid(i);
    match (&lc.data, &rc.data) {
        (ColumnData::Int(xs), ColumnData::Int(ys)) => {
            filter_by(op, sel, |i| both(i).then(|| xs[i].cmp(&ys[i])))
        }
        (ColumnData::Int(xs), ColumnData::Float(ys)) => filter_by(op, sel, |i| {
            both(i).then(|| (xs[i] as f64).total_cmp(&ys[i]))
        }),
        (ColumnData::Float(xs), ColumnData::Int(ys)) => filter_by(op, sel, |i| {
            both(i).then(|| xs[i].total_cmp(&(ys[i] as f64)))
        }),
        (ColumnData::Float(xs), ColumnData::Float(ys)) => {
            filter_by(op, sel, |i| both(i).then(|| xs[i].total_cmp(&ys[i])))
        }
        (ColumnData::Str(xs), ColumnData::Str(ys)) => {
            filter_by(op, sel, |i| both(i).then(|| xs[i].cmp(&ys[i])))
        }
        (ColumnData::Bool(xs), ColumnData::Bool(ys)) => {
            filter_by(op, sel, |i| both(i).then(|| xs[i].cmp(&ys[i])))
        }
        _ => filter_by(op, sel, |i| cell_cmp(lc.cell(i), rc.cell(i))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use evopt_common::expr::{col, lit};
    use evopt_common::{Tuple, Value};

    /// Rows over (i INT, f FLOAT, s STRING, b BOOL) with NULLs sprinkled in.
    fn rows() -> Vec<Tuple> {
        let mut out = Vec::new();
        for i in 0..40i64 {
            let v = |null_mod: i64, v: Value| if i % null_mod == 0 { Value::Null } else { v };
            out.push(Tuple::new(vec![
                v(5, Value::Int(i)),
                v(7, Value::Float(i as f64 / 2.0)),
                v(11, Value::Str(format!("s{:02}", i % 13))),
                v(3, Value::Bool(i % 2 == 0)),
            ]));
        }
        out
    }

    fn extract(rows: &[Tuple], kernel: &Kernel) -> Vec<Option<ColumnVector>> {
        let mut cols = vec![None, None, None, None];
        for c in kernel.referenced_columns() {
            cols[c] = Some(ColumnVector::from_rows(rows, c).unwrap());
        }
        cols
    }

    /// Differential harness: the kernel's selection must match row-by-row
    /// `eval_predicate` exactly.
    fn assert_matches_row_eval(e: &Expr) {
        let rows = rows();
        let kernel = compile_predicate(e).unwrap_or_else(|| panic!("compiles: {e}"));
        let cols = extract(&rows, &kernel);
        let sel: Vec<u32> = (0..rows.len() as u32).collect();
        let got = kernel.eval(&cols, &sel).unwrap();
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, t)| e.eval_predicate(t).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expect, "kernel vs row eval for {e}");
    }

    #[test]
    fn comparison_atoms_match_row_eval() {
        for op in [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ] {
            assert_matches_row_eval(&Expr::binary(op, col(0), lit(17i64)));
            assert_matches_row_eval(&Expr::binary(op, col(1), lit(8.5f64)));
            // Int column vs float constant and flipped literal-first form.
            assert_matches_row_eval(&Expr::binary(op, col(0), lit(16.5f64)));
            assert_matches_row_eval(&Expr::binary(op, lit(17i64), col(0)));
            // Column vs column across numeric representations.
            assert_matches_row_eval(&Expr::binary(op, col(0), col(1)));
            assert_matches_row_eval(&Expr::binary(op, col(2), lit("s05")));
            assert_matches_row_eval(&Expr::binary(op, col(3), lit(true)));
        }
    }

    #[test]
    fn null_comparisons_reject_all() {
        assert_matches_row_eval(&Expr::eq(col(0), Expr::Literal(Value::Null)));
    }

    #[test]
    fn cross_class_constant_uses_total_order() {
        // INT column vs STRING constant: sql_cmp says every int < every
        // string, so `<` accepts all non-null rows and `>` none.
        assert_matches_row_eval(&Expr::binary(BinOp::Lt, col(0), lit("zz")));
        assert_matches_row_eval(&Expr::binary(BinOp::Gt, col(0), lit("zz")));
        assert_matches_row_eval(&Expr::binary(BinOp::Eq, col(0), lit("zz")));
    }

    #[test]
    fn boolean_structure_matches_row_eval() {
        let a = Expr::binary(BinOp::Gt, col(0), lit(10i64));
        let b = Expr::binary(BinOp::Lt, col(1), lit(12.0f64));
        let c = Expr::eq(col(3), lit(true));
        assert_matches_row_eval(&Expr::and(a.clone(), b.clone()));
        assert_matches_row_eval(&Expr::or(a.clone(), b.clone()));
        assert_matches_row_eval(&Expr::not(Expr::and(a.clone(), b.clone())));
        assert_matches_row_eval(&Expr::not(Expr::or(Expr::not(a), Expr::not(b))));
        assert_matches_row_eval(&Expr::or(Expr::and(c.clone(), Expr::not(c.clone())), c));
    }

    #[test]
    fn is_null_kernels_match_row_eval() {
        for negated in [false, true] {
            let op = if negated {
                UnOp::IsNotNull
            } else {
                UnOp::IsNull
            };
            assert_matches_row_eval(&Expr::Unary {
                op,
                input: Box::new(col(0)),
            });
        }
        assert_matches_row_eval(&Expr::not(Expr::Unary {
            op: UnOp::IsNull,
            input: Box::new(col(1)),
        }));
    }

    #[test]
    fn between_and_in_list_match_row_eval() {
        for negated in [false, true] {
            assert_matches_row_eval(&Expr::Between {
                input: Box::new(col(0)),
                low: Box::new(lit(5i64)),
                high: Box::new(lit(25i64)),
                negated,
            });
            assert_matches_row_eval(&Expr::InList {
                input: Box::new(col(0)),
                list: vec![Value::Int(3), Value::Int(17), Value::Float(20.0)],
                negated,
            });
            // NULL in the list: `IN` can still accept, `NOT IN` never can.
            assert_matches_row_eval(&Expr::InList {
                input: Box::new(col(0)),
                list: vec![Value::Int(3), Value::Null],
                negated,
            });
            // NULL BETWEEN bound.
            assert_matches_row_eval(&Expr::Between {
                input: Box::new(col(0)),
                low: Box::new(Expr::Literal(Value::Null)),
                high: Box::new(lit(25i64)),
                negated,
            });
        }
    }

    #[test]
    fn unsupported_shapes_do_not_compile() {
        // Arithmetic inside a comparison.
        assert!(compile_predicate(&Expr::eq(
            Expr::binary(BinOp::Add, col(0), lit(1i64)),
            lit(3i64)
        ))
        .is_none());
        // LIKE.
        assert!(compile_predicate(&Expr::Like {
            input: Box::new(col(2)),
            pattern: "s%".into(),
            negated: false,
        })
        .is_none());
        // AND with one unsupported side poisons the whole tree.
        assert!(compile_predicate(&Expr::and(
            Expr::eq(col(0), lit(1i64)),
            Expr::Like {
                input: Box::new(col(2)),
                pattern: "s%".into(),
                negated: false,
            }
        ))
        .is_none());
    }

    #[test]
    fn mixed_variant_column_takes_generic_path() {
        let rows = vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::Float(1.0)]),
            Tuple::new(vec![Value::Float(2.5)]),
            Tuple::new(vec![Value::Null]),
        ];
        let e = Expr::binary(BinOp::LtEq, col(0), lit(1i64));
        let kernel = compile_predicate(&e).unwrap();
        let cols = vec![Some(ColumnVector::from_rows(&rows, 0).unwrap())];
        let sel: Vec<u32> = (0..4).collect();
        let got = kernel.eval(&cols, &sel).unwrap();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn selection_chains_narrow_in_order() {
        let rows = rows();
        let e = Expr::and(
            Expr::binary(BinOp::GtEq, col(0), lit(10i64)),
            Expr::binary(BinOp::Lt, col(0), lit(30i64)),
        );
        let kernel = compile_predicate(&e).unwrap();
        let cols = extract(&rows, &kernel);
        // Start from a partial selection: results must stay within it.
        let sel: Vec<u32> = (0..rows.len() as u32).step_by(2).collect();
        let got = kernel.eval(&cols, &sel).unwrap();
        assert!(got.iter().all(|i| sel.contains(i)));
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        for &i in &got {
            assert!(e.eval_predicate(&rows[i as usize]).unwrap());
        }
    }
}
