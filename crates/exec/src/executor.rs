//! The [`Executor`] trait and the plan→executor builder.

use std::sync::Arc;
use std::time::Instant;

use evopt_catalog::Catalog;
use evopt_common::{Batch, Result, Schema, Tuple, DEFAULT_BATCH_ROWS};
use evopt_core::physical::{PhysOp, PhysicalPlan};

use crate::governor::{CancellationToken, GovernedExec, GovernorConfig, QueryGovernor};
use crate::metrics::{InstrumentedExec, MetricsRegistry, QueryMetrics};

/// Execution environment shared by all operators of one query.
#[derive(Clone)]
pub struct ExecEnv {
    pub catalog: Arc<Catalog>,
    /// Buffer pages operators may assume for blocking/spilling decisions
    /// (mirrors the cost model's `buffer_pages`).
    pub buffer_pages: usize,
    /// Target rows per [`Batch`] produced by every operator. Always ≥ 1.
    pub batch_rows: usize,
    /// Optional engine metrics registry. When present, root drains count
    /// batches/rows and spilling operators count spill events; when
    /// `None`, execution pays zero bookkeeping.
    pub metrics: Option<Arc<evopt_obs::EngineMetrics>>,
    /// Use the columnar operators (typed filter kernels, typed join key
    /// maps, typed aggregation) where available. Off = the original
    /// row-at-a-time operators everywhere — kept alive as the differential
    /// baseline for the columnar port.
    pub columnar: bool,
}

impl ExecEnv {
    pub fn new(catalog: Arc<Catalog>, buffer_pages: usize) -> Self {
        ExecEnv {
            catalog,
            buffer_pages,
            batch_rows: DEFAULT_BATCH_ROWS,
            metrics: None,
            columnar: true,
        }
    }

    /// Override the batch capacity (clamped to ≥ 1 — a zero-row batch can
    /// never make progress).
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// Attach an engine metrics registry.
    pub fn with_metrics(mut self, metrics: Arc<evopt_obs::EngineMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Select columnar (default) or row-at-a-time operators.
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Record root-drain output volume, if metrics are attached. Mirrored
    /// into the process-global registry so fleet-wide tooling sees every
    /// environment.
    pub(crate) fn record_output(&self, batches: u64, rows: u64) {
        if let Some(m) = &self.metrics {
            for m in [m.as_ref(), evopt_obs::global()] {
                m.exec_batches.add(batches);
                m.exec_rows.add(rows);
            }
        }
    }

    /// Record one operator spilling to disk, if metrics are attached.
    pub(crate) fn record_spill(&self) {
        if let Some(m) = &self.metrics {
            m.exec_spills.inc();
            evopt_obs::global().exec_spills.inc();
        }
    }
}

/// Unwrap a state option an operator establishes by construction. A `None`
/// is an executor bug — surfaced as `EvoptError::Internal` instead of a
/// panic so a fault mid-query can never take the process down.
pub(crate) fn invariant<T>(opt: Option<T>, what: &str) -> Result<T> {
    opt.ok_or_else(|| {
        evopt_common::EvoptError::Internal(format!("executor state invariant violated: {what}"))
    })
}

/// A batch-at-a-time Volcano iterator: produces runs of tuples.
///
/// Contract: `next_batch` returns `Ok(Some(batch))` with a **non-empty**
/// batch of at most the environment's `batch_rows` rows, or `Ok(None)` once
/// exhausted (and on every call thereafter).
pub trait Executor {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// The next batch of rows, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

/// Pull-side adapter: buffers the child's batches and serves rows one at a
/// time. Row-logic operators (merge join, sort run formation, aggregate
/// accumulation) consume through this so they pay one virtual
/// `next_batch()` per batch — the per-row step is a slice index, not a
/// dynamic dispatch.
pub struct BatchCursor {
    input: Box<dyn Executor>,
    batch: std::vec::IntoIter<Tuple>,
    done: bool,
}

impl BatchCursor {
    pub fn new(input: Box<dyn Executor>) -> BatchCursor {
        BatchCursor {
            input,
            batch: Vec::new().into_iter(),
            done: false,
        }
    }

    pub fn schema(&self) -> &Schema {
        self.input.schema()
    }

    /// The next row, refilling from the child when the buffered batch runs
    /// dry.
    pub fn next_row(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.batch.next() {
                return Ok(Some(t));
            }
            if self.done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                Some(b) => self.batch = b.into_rows().into_iter(),
                None => self.done = true,
            }
        }
    }
}

/// Output-side buffer: operators that generate rows incrementally (joins,
/// streaming aggregates) push here and flush batches of at most `target`
/// rows, so no emitted batch exceeds the configured capacity even when one
/// probe fans out to many matches.
pub(crate) struct BatchBuilder {
    schema: Schema,
    target: usize,
    rows: Vec<Tuple>,
}

impl BatchBuilder {
    pub(crate) fn new(schema: Schema, target: usize) -> BatchBuilder {
        BatchBuilder {
            schema,
            target: target.max(1),
            rows: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, row: Tuple) {
        self.rows.push(row);
    }

    /// Enough buffered rows to emit a full batch.
    pub(crate) fn full(&self) -> bool {
        self.rows.len() >= self.target
    }

    /// Up to `target` buffered rows as a batch; `None` when empty.
    pub(crate) fn flush(&mut self) -> Option<Batch> {
        if self.rows.is_empty() {
            return None;
        }
        let rows: Vec<Tuple> = if self.rows.len() > self.target {
            self.rows.drain(..self.target).collect()
        } else {
            std::mem::take(&mut self.rows)
        };
        Some(Batch::new(self.schema.clone(), rows))
    }
}

/// Instantiate the operator tree for `plan`.
pub fn build_executor(plan: &PhysicalPlan, env: &ExecEnv) -> Result<Box<dyn Executor>> {
    build_node(plan, env, None, None)
}

/// Instantiate `plan` with every operator wrapped in an
/// [`InstrumentedExec`]. The returned registry holds one metric slot per
/// plan node, in the same pre-order as [`PhysicalPlan::pre_order`].
pub fn build_instrumented(
    plan: &PhysicalPlan,
    env: &ExecEnv,
) -> Result<(Box<dyn Executor>, MetricsRegistry)> {
    let registry = MetricsRegistry::for_plan(plan);
    let exec = build_node(plan, env, Some((&registry, 0)), None)?;
    Ok((exec, registry))
}

/// Shared builder. When `instr` is set, `idx` is this node's pre-order index
/// in the registry; children are built at their own pre-order offsets and
/// every constructed operator is wrapped with its metric slot. When `gov` is
/// set, every operator is additionally wrapped in a [`GovernedExec`] so a
/// cancel/timeout/budget kill lands within one `next_batch()` call anywhere
/// in the tree.
fn build_node(
    plan: &PhysicalPlan,
    env: &ExecEnv,
    instr: Option<(&MetricsRegistry, usize)>,
    gov: Option<&Arc<QueryGovernor>>,
) -> Result<Box<dyn Executor>> {
    // Build the `offset`-th pre-order successor of this node (1 = first
    // child; 1 + first_child.node_count() = second child).
    let child = |c: &PhysicalPlan, offset: usize| -> Result<Box<dyn Executor>> {
        build_node(c, env, instr.map(|(reg, idx)| (reg, idx + offset)), gov)
    };
    let exec: Box<dyn Executor> = match &plan.op {
        PhysOp::SeqScan { table, filter } => Box::new(crate::scan::SeqScanExec::new(
            env,
            table,
            filter.clone(),
            plan.schema.clone(),
        )?),
        PhysOp::IndexScan {
            table,
            index,
            range,
            residual,
            ..
        } => Box::new(crate::scan::IndexScanExec::new(
            env,
            table,
            index,
            range.clone(),
            residual.clone(),
            plan.schema.clone(),
        )?),
        PhysOp::Filter { input, predicate } => {
            if env.columnar {
                Box::new(crate::columnar::ColumnarFilterExec::new(
                    child(input, 1)?,
                    predicate.clone(),
                ))
            } else {
                Box::new(crate::simple::FilterExec::new(
                    child(input, 1)?,
                    predicate.clone(),
                ))
            }
        }
        PhysOp::Project { input, exprs } => Box::new(crate::simple::ProjectExec::new(
            child(input, 1)?,
            exprs.clone(),
            plan.schema.clone(),
        )),
        PhysOp::Limit { input, limit } => {
            Box::new(crate::simple::LimitExec::new(child(input, 1)?, *limit))
        }
        PhysOp::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            // The inner side is re-instantiated once per outer row; hand the
            // executor a builder so each re-open is still instrumented (the
            // subtree's metric slots accumulate across re-opens).
            let left_exec = child(left, 1)?;
            let right_plan = (**right).clone();
            let right_env = env.clone();
            let right_instr = instr.map(|(reg, idx)| (reg.clone(), idx + 1 + left.node_count()));
            let right_gov = gov.cloned();
            let right_builder = move || {
                build_node(
                    &right_plan,
                    &right_env,
                    right_instr.as_ref().map(|(reg, idx)| (reg, *idx)),
                    right_gov.as_ref(),
                )
            };
            Box::new(crate::join::NestedLoopJoinExec::new(
                left_exec,
                Box::new(right_builder),
                predicate.clone(),
                plan.schema.clone(),
                env.batch_rows,
            ))
        }
        PhysOp::BlockNestedLoopJoin {
            left,
            right,
            predicate,
            block_pages,
        } => Box::new(crate::join::BlockNestedLoopJoinExec::new(
            child(left, 1)?,
            child(right, 1 + left.node_count())?,
            env.clone(),
            predicate.clone(),
            *block_pages,
            plan.schema.clone(),
        )),
        PhysOp::IndexNestedLoopJoin {
            outer,
            inner_table,
            index,
            outer_key,
            residual,
        } => Box::new(crate::join::IndexNestedLoopJoinExec::new(
            child(outer, 1)?,
            env,
            inner_table,
            index,
            *outer_key,
            residual.clone(),
            plan.schema.clone(),
        )?),
        PhysOp::SortMergeJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => Box::new(crate::join::SortMergeJoinExec::new(
            child(left, 1)?,
            child(right, 1 + left.node_count())?,
            *left_key,
            *right_key,
            residual.clone(),
            plan.schema.clone(),
            env.batch_rows,
        )),
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => Box::new(crate::join::HashJoinExec::new(
            child(left, 1)?,
            child(right, 1 + left.node_count())?,
            env.clone(),
            *left_key,
            *right_key,
            residual.clone(),
            plan.schema.clone(),
        )),
        PhysOp::Sort { input, keys } => Box::new(crate::sort::SortExec::new(
            child(input, 1)?,
            env.clone(),
            keys.clone(),
        )),
        PhysOp::HashAggregate {
            input,
            group_by,
            aggs,
        } => {
            if env.columnar {
                Box::new(crate::columnar::ColumnarHashAggregateExec::new(
                    child(input, 1)?,
                    group_by.clone(),
                    aggs.clone(),
                    plan.schema.clone(),
                    env.batch_rows,
                ))
            } else {
                Box::new(crate::agg::HashAggregateExec::new(
                    child(input, 1)?,
                    group_by.clone(),
                    aggs.clone(),
                    plan.schema.clone(),
                    env.batch_rows,
                ))
            }
        }
        PhysOp::SortAggregate {
            input,
            group_by,
            aggs,
        } => Box::new(crate::agg::SortAggregateExec::new(
            child(input, 1)?,
            group_by.clone(),
            aggs.clone(),
            plan.schema.clone(),
            env.batch_rows,
        )),
    };
    // Governor check innermost, instrumentation outermost: the
    // `next_batch()` call that trips the governor is still metered, so
    // killed queries report accurate partial metrics.
    let exec: Box<dyn Executor> = match gov {
        Some(governor) => Box::new(GovernedExec::new(exec, Arc::clone(governor))),
        None => exec,
    };
    Ok(match instr {
        Some((registry, idx)) => Box::new(InstrumentedExec::new(
            exec,
            registry.node(idx),
            Arc::clone(env.catalog.pool()),
        )),
        None => exec,
    })
}

/// Build and drain a plan into a vector.
pub fn run_collect(plan: &PhysicalPlan, env: &ExecEnv) -> Result<Vec<Tuple>> {
    let mut exec = build_executor(plan, env)?;
    let mut out = Vec::new();
    let mut batches = 0u64;
    while let Some(batch) = exec.next_batch()? {
        batches += 1;
        out.extend(batch.into_rows());
    }
    env.record_output(batches, out.len() as u64);
    Ok(out)
}

/// Build, instrument, and drain a plan; returns the rows plus the full
/// estimate-vs-actual [`QueryMetrics`] for the run.
pub fn run_collect_instrumented(
    plan: &PhysicalPlan,
    env: &ExecEnv,
) -> Result<(Vec<Tuple>, QueryMetrics)> {
    let pool = Arc::clone(env.catalog.pool());
    let pool_before = pool.stats();
    let io_before = pool.disk().snapshot();
    let start = Instant::now();
    let (mut exec, registry) = build_instrumented(plan, env)?;
    let mut out = Vec::new();
    let mut batches = 0u64;
    while let Some(batch) = exec.next_batch()? {
        batches += 1;
        out.extend(batch.into_rows());
    }
    env.record_output(batches, out.len() as u64);
    let elapsed = start.elapsed();
    let pool_delta = pool.stats().since(&pool_before);
    let io_delta = pool.disk().snapshot().since(&io_before);
    let metrics = QueryMetrics::collect(plan, &registry, elapsed, pool_delta, io_delta);
    Ok((out, metrics))
}

/// Build, instrument, govern, and drain a plan.
///
/// Unlike [`run_collect_instrumented`], the [`QueryMetrics`] come back even
/// when the query dies — canceled, timed out, over budget, or killed by an
/// I/O fault — so a killed query still reports what it did up to the kill.
/// The error (if any) and the metrics are returned side by side.
///
/// Governed runs clamp the batch capacity to the config's
/// `max_batch_rows`, bounding how much work can happen between two
/// governor checks (the kill latency is at most one batch anywhere in the
/// tree).
pub fn run_collect_governed(
    plan: &PhysicalPlan,
    env: &ExecEnv,
    config: GovernorConfig,
    token: CancellationToken,
) -> (Result<Vec<Tuple>>, QueryMetrics) {
    let env = env
        .clone()
        .with_batch_rows(env.batch_rows.min(config.max_batch_rows));
    let pool = Arc::clone(env.catalog.pool());
    let governor = Arc::new(QueryGovernor::new(config, token, Arc::clone(&pool)));
    let pool_before = pool.stats();
    let io_before = pool.disk().snapshot();
    let start = Instant::now();
    let registry = MetricsRegistry::for_plan(plan);
    let result = (|| {
        let mut exec = build_node(plan, &env, Some((&registry, 0)), Some(&governor))?;
        let mut out = Vec::new();
        let mut batches = 0u64;
        while let Some(batch) = exec.next_batch()? {
            // The row budget is counted at the root drain: rows the query
            // *returns*, not intermediate tuples.
            governor.record_rows(batch.len() as u64)?;
            batches += 1;
            out.extend(batch.into_rows());
        }
        env.record_output(batches, out.len() as u64);
        Ok(out)
    })();
    let elapsed = start.elapsed();
    let pool_delta = pool.stats().since(&pool_before);
    let io_delta = pool.disk().snapshot().since(&io_before);
    let metrics = QueryMetrics::collect(plan, &registry, elapsed, pool_delta, io_delta);
    (result, metrics)
}
