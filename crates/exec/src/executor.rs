//! The [`Executor`] trait and the plan→executor builder.

use std::sync::Arc;

use evopt_catalog::Catalog;
use evopt_common::{Result, Schema, Tuple};
use evopt_core::physical::{PhysOp, PhysicalPlan};

/// Execution environment shared by all operators of one query.
#[derive(Clone)]
pub struct ExecEnv {
    pub catalog: Arc<Catalog>,
    /// Buffer pages operators may assume for blocking/spilling decisions
    /// (mirrors the cost model's `buffer_pages`).
    pub buffer_pages: usize,
}

impl ExecEnv {
    pub fn new(catalog: Arc<Catalog>, buffer_pages: usize) -> Self {
        ExecEnv {
            catalog,
            buffer_pages,
        }
    }
}

/// A Volcano iterator: produces tuples one at a time.
pub trait Executor {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// The next tuple, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Tuple>>;
}

/// Instantiate the operator tree for `plan`.
pub fn build_executor(plan: &PhysicalPlan, env: &ExecEnv) -> Result<Box<dyn Executor>> {
    Ok(match &plan.op {
        PhysOp::SeqScan { table, filter } => Box::new(crate::scan::SeqScanExec::new(
            env,
            table,
            filter.clone(),
            plan.schema.clone(),
        )?),
        PhysOp::IndexScan {
            table,
            index,
            range,
            residual,
            ..
        } => Box::new(crate::scan::IndexScanExec::new(
            env,
            table,
            index,
            range.clone(),
            residual.clone(),
            plan.schema.clone(),
        )?),
        PhysOp::Filter { input, predicate } => Box::new(crate::simple::FilterExec::new(
            build_executor(input, env)?,
            predicate.clone(),
        )),
        PhysOp::Project { input, exprs } => Box::new(crate::simple::ProjectExec::new(
            build_executor(input, env)?,
            exprs.clone(),
            plan.schema.clone(),
        )),
        PhysOp::Limit { input, limit } => Box::new(crate::simple::LimitExec::new(
            build_executor(input, env)?,
            *limit,
        )),
        PhysOp::NestedLoopJoin {
            left,
            right,
            predicate,
        } => Box::new(crate::join::NestedLoopJoinExec::new(
            build_executor(left, env)?,
            (**right).clone(),
            env.clone(),
            predicate.clone(),
            plan.schema.clone(),
        )),
        PhysOp::BlockNestedLoopJoin {
            left,
            right,
            predicate,
            block_pages,
        } => Box::new(crate::join::BlockNestedLoopJoinExec::new(
            build_executor(left, env)?,
            build_executor(right, env)?,
            env.clone(),
            predicate.clone(),
            *block_pages,
            plan.schema.clone(),
        )),
        PhysOp::IndexNestedLoopJoin {
            outer,
            inner_table,
            index,
            outer_key,
            residual,
        } => Box::new(crate::join::IndexNestedLoopJoinExec::new(
            build_executor(outer, env)?,
            env,
            inner_table,
            index,
            *outer_key,
            residual.clone(),
            plan.schema.clone(),
        )?),
        PhysOp::SortMergeJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => Box::new(crate::join::SortMergeJoinExec::new(
            build_executor(left, env)?,
            build_executor(right, env)?,
            *left_key,
            *right_key,
            residual.clone(),
            plan.schema.clone(),
        )),
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => Box::new(crate::join::HashJoinExec::new(
            build_executor(left, env)?,
            build_executor(right, env)?,
            env.clone(),
            *left_key,
            *right_key,
            residual.clone(),
            plan.schema.clone(),
        )),
        PhysOp::Sort { input, keys } => Box::new(crate::sort::SortExec::new(
            build_executor(input, env)?,
            env.clone(),
            keys.clone(),
        )),
        PhysOp::HashAggregate {
            input,
            group_by,
            aggs,
        } => Box::new(crate::agg::HashAggregateExec::new(
            build_executor(input, env)?,
            group_by.clone(),
            aggs.clone(),
            plan.schema.clone(),
        )),
        PhysOp::SortAggregate {
            input,
            group_by,
            aggs,
        } => Box::new(crate::agg::SortAggregateExec::new(
            build_executor(input, env)?,
            group_by.clone(),
            aggs.clone(),
            plan.schema.clone(),
        )),
    })
}

/// Build and drain a plan into a vector.
pub fn run_collect(plan: &PhysicalPlan, env: &ExecEnv) -> Result<Vec<Tuple>> {
    let mut exec = build_executor(plan, env)?;
    let mut out = Vec::new();
    while let Some(t) = exec.next()? {
        out.push(t);
    }
    Ok(out)
}
