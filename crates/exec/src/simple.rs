//! Filter, projection and limit.

use evopt_common::{Expr, Result, Schema, Tuple};

use crate::executor::Executor;

/// Row filter.
pub struct FilterExec {
    input: Box<dyn Executor>,
    predicate: Expr,
}

impl FilterExec {
    pub fn new(input: Box<dyn Executor>, predicate: Expr) -> Self {
        FilterExec { input, predicate }
    }
}

impl Executor for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.input.next()? {
            if self.predicate.eval_predicate(&t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

/// Expression projection.
pub struct ProjectExec {
    input: Box<dyn Executor>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl ProjectExec {
    pub fn new(input: Box<dyn Executor>, exprs: Vec<Expr>, schema: Schema) -> Self {
        ProjectExec {
            input,
            exprs,
            schema,
        }
    }
}

impl Executor for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.input.next()? {
            None => Ok(None),
            Some(t) => {
                let mut values = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    values.push(e.eval(&t)?);
                }
                Ok(Some(Tuple::new(values)))
            }
        }
    }
}

/// First-k.
pub struct LimitExec {
    input: Box<dyn Executor>,
    remaining: usize,
}

impl LimitExec {
    pub fn new(input: Box<dyn Executor>, limit: usize) -> Self {
        LimitExec {
            input,
            remaining: limit,
        }
    }
}

impl Executor for LimitExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(t) => {
                self.remaining -= 1;
                Ok(Some(t))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use crate::executor::run_collect;
    use crate::scan::test_support::{seq_plan, setup};
    use evopt_common::expr::{col, lit};
    use evopt_common::{BinOp, Expr, Value};
    use evopt_core::cost::Cost;
    use evopt_core::physical::{PhysOp, PhysicalPlan};

    #[test]
    fn filter_project_limit_pipeline() {
        let env = setup(100, 16);
        let scan = seq_plan(&env, "nums", None);
        let filtered = PhysicalPlan {
            schema: scan.schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Filter {
                input: Box::new(scan),
                predicate: Expr::binary(BinOp::GtEq, col(0), lit(90i64)),
            },
        };
        let projected = PhysicalPlan {
            schema: filtered.schema.project(&[0]).unwrap(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Project {
                input: Box::new(filtered),
                exprs: vec![Expr::binary(BinOp::Mul, col(0), lit(2i64))],
            },
        };
        let limited = PhysicalPlan {
            schema: projected.schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Limit {
                input: Box::new(projected),
                limit: 3,
            },
        };
        let rows = run_collect(&limited, &env).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value(0).unwrap(), &Value::Int(180));
        assert_eq!(rows[2].value(0).unwrap(), &Value::Int(184));
    }

    #[test]
    fn limit_zero_and_overlong() {
        let env = setup(5, 16);
        let mk = |limit| PhysicalPlan {
            schema: seq_plan(&env, "nums", None).schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Limit {
                input: Box::new(seq_plan(&env, "nums", None)),
                limit,
            },
        };
        assert_eq!(run_collect(&mk(0), &env).unwrap().len(), 0);
        assert_eq!(run_collect(&mk(100), &env).unwrap().len(), 5);
    }
}
