//! Filter, projection and limit.
//!
//! All three are batch transformers: one input batch in, at most one
//! output batch out, with the expression evaluated across the whole batch
//! per `next_batch()` call.

use evopt_common::{Batch, Expr, Result, Schema, Tuple};

use crate::executor::Executor;

/// Row filter: evaluates the predicate over every row of an input batch
/// and keeps the survivors.
pub struct FilterExec {
    input: Box<dyn Executor>,
    predicate: Expr,
}

impl FilterExec {
    pub fn new(input: Box<dyn Executor>, predicate: Expr) -> Self {
        FilterExec { input, predicate }
    }
}

impl Executor for FilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        // A batch may filter down to nothing; keep pulling so an emitted
        // batch is never empty.
        while let Some(batch) = self.input.next_batch()? {
            let (schema, rows) = batch.into_parts();
            let mut kept = Vec::with_capacity(rows.len());
            for t in rows {
                if self.predicate.eval_predicate(&t)? {
                    kept.push(t);
                }
            }
            if !kept.is_empty() {
                return Ok(Some(Batch::new(schema, kept)));
            }
        }
        Ok(None)
    }
}

/// Expression projection: maps the expression list over a whole batch per
/// call.
pub struct ProjectExec {
    input: Box<dyn Executor>,
    exprs: Vec<Expr>,
    schema: Schema,
}

impl ProjectExec {
    pub fn new(input: Box<dyn Executor>, exprs: Vec<Expr>, schema: Schema) -> Self {
        ProjectExec {
            input,
            exprs,
            schema,
        }
    }
}

impl Executor for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                let mut out = Batch::with_capacity(self.schema.clone(), batch.len());
                for t in batch.iter() {
                    let mut values = Vec::with_capacity(self.exprs.len());
                    for e in &self.exprs {
                        values.push(e.eval(t)?);
                    }
                    out.push(Tuple::new(values));
                }
                Ok(Some(out))
            }
        }
    }
}

/// First-k: truncates the batch that crosses the limit and stops pulling.
pub struct LimitExec {
    input: Box<dyn Executor>,
    remaining: usize,
}

impl LimitExec {
    pub fn new(input: Box<dyn Executor>, limit: usize) -> Self {
        LimitExec {
            input,
            remaining: limit,
        }
    }
}

impl Executor for LimitExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next_batch()? {
            Some(mut batch) => {
                batch.truncate(self.remaining);
                self.remaining -= batch.len();
                Ok(Some(batch))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use crate::executor::run_collect;
    use crate::scan::test_support::{seq_plan, setup};
    use evopt_common::expr::{col, lit};
    use evopt_common::{BinOp, Expr, Value};
    use evopt_core::cost::Cost;
    use evopt_core::physical::{PhysOp, PhysicalPlan};

    #[test]
    fn filter_project_limit_pipeline() {
        let env = setup(100, 16);
        let scan = seq_plan(&env, "nums", None);
        let filtered = PhysicalPlan {
            schema: scan.schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Filter {
                input: Box::new(scan),
                predicate: Expr::binary(BinOp::GtEq, col(0), lit(90i64)),
            },
        };
        let projected = PhysicalPlan {
            schema: filtered.schema.project(&[0]).unwrap(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Project {
                input: Box::new(filtered),
                exprs: vec![Expr::binary(BinOp::Mul, col(0), lit(2i64))],
            },
        };
        let limited = PhysicalPlan {
            schema: projected.schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Limit {
                input: Box::new(projected),
                limit: 3,
            },
        };
        let rows = run_collect(&limited, &env).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].value(0).unwrap(), &Value::Int(180));
        assert_eq!(rows[2].value(0).unwrap(), &Value::Int(184));
    }

    #[test]
    fn limit_zero_and_overlong() {
        let env = setup(5, 16);
        let mk = |limit| PhysicalPlan {
            schema: seq_plan(&env, "nums", None).schema.clone(),
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
            op: PhysOp::Limit {
                input: Box::new(seq_plan(&env, "nums", None)),
                limit,
            },
        };
        assert_eq!(run_collect(&mk(0), &env).unwrap().len(), 0);
        assert_eq!(run_collect(&mk(100), &env).unwrap().len(), 5);
    }
}
