//! Base-relation access: sequential and index scans.

use std::ops::Bound;
use std::sync::Arc;

use evopt_catalog::TableInfo;
use evopt_common::{Batch, EvoptError, Expr, Result, Schema};
use evopt_core::physical::KeyRange;
use evopt_storage::btree::BTreeRangeScan;
use evopt_storage::heap::HeapScan;

use crate::executor::{ExecEnv, Executor};

/// Full heap scan with an optional pushed-down filter; fills one batch of
/// surviving rows per `next_batch()` call.
pub struct SeqScanExec {
    schema: Schema,
    scan: HeapScan,
    filter: Option<Expr>,
    batch_rows: usize,
}

impl SeqScanExec {
    pub fn new(
        env: &ExecEnv,
        table: &str,
        filter: Option<Expr>,
        schema: Schema,
    ) -> Result<SeqScanExec> {
        let info = env.catalog.table(table)?;
        Ok(SeqScanExec {
            schema,
            scan: info.heap.scan(),
            filter,
            batch_rows: env.batch_rows,
        })
    }
}

impl Executor for SeqScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let mut batch = Batch::with_capacity(self.schema.clone(), self.batch_rows);
        for item in self.scan.by_ref() {
            let (_, tuple) = item?;
            if let Some(f) = &self.filter {
                if !f.eval_predicate(&tuple)? {
                    continue;
                }
            }
            batch.push(tuple);
            if batch.len() >= self.batch_rows {
                break;
            }
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

/// Index-driven scan: walk the B+-tree range, fetch heap tuples, apply the
/// residual filter. I/O = tree descent + leaf pages + heap fetches — the
/// exact pattern the cost model prices.
pub struct IndexScanExec {
    schema: Schema,
    heap: Arc<TableInfo>,
    range_scan: BTreeRangeScan,
    residual: Option<Expr>,
    batch_rows: usize,
}

impl IndexScanExec {
    pub fn new(
        env: &ExecEnv,
        table: &str,
        index: &str,
        range: KeyRange,
        residual: Option<Expr>,
        schema: Schema,
    ) -> Result<IndexScanExec> {
        let info = env.catalog.table(table)?;
        let idx = info
            .indexes()
            .into_iter()
            .find(|i| i.name == index)
            .ok_or_else(|| {
                EvoptError::Execution(format!("unknown index '{index}' on '{table}'"))
            })?;
        let low = bound_ref(&range.low);
        let high = bound_ref(&range.high);
        let range_scan = idx.btree.range(low, high)?;
        Ok(IndexScanExec {
            schema,
            heap: info,
            range_scan,
            residual,
            batch_rows: env.batch_rows,
        })
    }
}

fn bound_ref(b: &Bound<evopt_common::Value>) -> Bound<&evopt_common::Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

impl Executor for IndexScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let mut batch = Batch::with_capacity(self.schema.clone(), self.batch_rows);
        for item in self.range_scan.by_ref() {
            let (_, rid) = item?;
            let tuple = self.heap.heap.get(rid)?.ok_or_else(|| {
                EvoptError::Execution(format!("index points at deleted rid {rid}"))
            })?;
            if let Some(f) = &self.residual {
                if !f.eval_predicate(&tuple)? {
                    continue;
                }
            }
            batch.push(tuple);
            if batch.len() >= self.batch_rows {
                break;
            }
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A small shared world for executor tests.

    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use evopt_catalog::{analyze_table, AnalyzeConfig, Catalog};
    use evopt_common::{Column, DataType, Tuple, Value};
    use evopt_core::cost::Cost;
    use evopt_core::physical::{PhysOp, PhysicalPlan};
    use evopt_storage::{BufferPool, DiskManager, PolicyKind};

    /// Catalog with `nums(k INT, v INT, s STRING)`: k = 0..n unique
    /// (indexed), v = k % 10, s = "row-k".
    pub fn setup(n: i64, pool_pages: usize) -> ExecEnv {
        let disk = Arc::new(DiskManager::new());
        let pool = BufferPool::new(disk, pool_pages, PolicyKind::Lru);
        let cat = Arc::new(Catalog::new(pool));
        let t = cat
            .create_table(
                "nums",
                Schema::new(vec![
                    Column::new("k", DataType::Int).not_null(),
                    Column::new("v", DataType::Int),
                    Column::new("s", DataType::Str),
                ]),
            )
            .unwrap();
        for i in 0..n {
            t.heap
                .insert(&Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Str(format!("row-{i}")),
                ]))
                .unwrap();
        }
        cat.create_index("nums_k", "nums", "k", true, false)
            .unwrap();
        // create_index clone-and-swaps the TableInfo (CoW catalog):
        // re-fetch so the stats land on the registered entry.
        let t = cat.table("nums").unwrap();
        analyze_table(&t, &AnalyzeConfig::default()).unwrap();
        ExecEnv::new(cat, 16)
    }

    pub fn seq_plan(env: &ExecEnv, table: &str, filter: Option<Expr>) -> PhysicalPlan {
        let schema = env.catalog.table(table).unwrap().schema.clone();
        PhysicalPlan {
            op: PhysOp::SeqScan {
                table: table.into(),
                filter,
            },
            schema,
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
        }
    }

    pub fn index_plan(
        env: &ExecEnv,
        table: &str,
        index: &str,
        range: KeyRange,
        residual: Option<Expr>,
    ) -> PhysicalPlan {
        let schema = env.catalog.table(table).unwrap().schema.clone();
        PhysicalPlan {
            op: PhysOp::IndexScan {
                table: table.into(),
                index: index.into(),
                range,
                residual,
                clustered: false,
            },
            schema,
            est_rows: 0.0,
            est_cost: Cost::ZERO,
            output_order: None,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::test_support::*;
    use crate::executor::run_collect;
    use evopt_common::expr::{col, lit};
    use evopt_common::{BinOp, Expr, Value};
    use evopt_core::physical::KeyRange;

    #[test]
    fn seq_scan_returns_all_rows() {
        let env = setup(500, 16);
        let rows = run_collect(&seq_plan(&env, "nums", None), &env).unwrap();
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0].value(0).unwrap(), &Value::Int(0));
        assert_eq!(rows[499].value(2).unwrap(), &Value::Str("row-499".into()));
    }

    #[test]
    fn seq_scan_filters() {
        let env = setup(500, 16);
        let plan = seq_plan(&env, "nums", Some(Expr::eq(col(1), lit(3i64))));
        let rows = run_collect(&plan, &env).unwrap();
        assert_eq!(rows.len(), 50);
        assert!(rows.iter().all(|t| t.value(1).unwrap() == &Value::Int(3)));
    }

    #[test]
    fn index_scan_point_and_range() {
        let env = setup(1000, 16);
        let rows = run_collect(
            &index_plan(&env, "nums", "nums_k", KeyRange::eq(Value::Int(42)), None),
            &env,
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value(2).unwrap(), &Value::Str("row-42".into()));

        let range = KeyRange {
            low: std::ops::Bound::Included(Value::Int(10)),
            high: std::ops::Bound::Excluded(Value::Int(20)),
        };
        let rows = run_collect(&index_plan(&env, "nums", "nums_k", range, None), &env).unwrap();
        assert_eq!(rows.len(), 10);
        // Index order: ascending by k.
        let ks: Vec<i64> = rows
            .iter()
            .map(|t| t.value(0).unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ks, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn index_scan_residual_filters() {
        let env = setup(1000, 16);
        let range = KeyRange {
            low: std::ops::Bound::Included(Value::Int(0)),
            high: std::ops::Bound::Excluded(Value::Int(100)),
        };
        let residual = Some(Expr::binary(BinOp::Eq, col(1), lit(7i64)));
        let rows = run_collect(&index_plan(&env, "nums", "nums_k", range, residual), &env).unwrap();
        assert_eq!(rows.len(), 10); // k in 0..100 with k % 10 == 7
    }

    #[test]
    fn unknown_index_is_execution_error() {
        let env = setup(10, 16);
        let plan = index_plan(&env, "nums", "nope", KeyRange::all(), None);
        let err = run_collect(&plan, &env).unwrap_err();
        assert_eq!(err.kind(), "execution");
    }
}
