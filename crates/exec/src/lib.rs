//! # evopt-exec
//!
//! The Volcano-style execution engine: interprets the optimizer's
//! [`evopt_core::PhysicalPlan`]s against the storage engine.
//!
//! Every operator implements [`Executor`] (`open`-by-construction /
//! `next()`); all page access goes through the shared buffer pool, so the
//! **measured physical I/O of a plan is real** — block nested loops
//! materialises and re-reads its inner, external sort spills runs, the
//! Grace hash join partitions to temporary heaps. That is the point: the
//! experiments compare these measured page counts against the optimizer's
//! predictions (T5, F4).
//!
//! Entry points: [`build_executor`] to instantiate a plan, [`run_collect`]
//! to drain it into a vector.

pub mod agg;
pub mod executor;
pub mod join;
pub mod metrics;
pub mod scan;
pub mod simple;
pub mod sort;

pub use executor::{
    build_executor, build_instrumented, run_collect, run_collect_instrumented, ExecEnv, Executor,
};
pub use metrics::{MetricsRegistry, OperatorMetrics, QueryMetrics};

#[cfg(test)]
mod op_tests;
