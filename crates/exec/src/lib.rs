//! # evopt-exec
//!
//! The batch-vectorized execution engine: interprets the optimizer's
//! [`evopt_core::PhysicalPlan`]s against the storage engine.
//!
//! Every operator implements [`Executor`] (`open`-by-construction /
//! `next_batch()`): the Volcano pull loop, but moving a
//! [`Batch`](evopt_common::Batch) of up to `batch_rows` tuples (default
//! 1024) per call instead of one tuple. Virtual dispatch, per-operator
//! instrumentation stamps and governor checks are paid once per batch, not
//! once per row. Operators whose inner logic is naturally row-at-a-time
//! (merge join, sort run formation, aggregation) pull rows through a
//! [`executor::BatchCursor`], which costs a plain `Vec` iterator step per
//! row.
//!
//! All page access still goes through the shared buffer pool, so the
//! **measured physical I/O of a plan is real** — block nested loops
//! materialises and re-reads its inner, external sort spills runs, the
//! Grace hash join partitions to temporary heaps. That is the point: the
//! experiments compare these measured page counts against the optimizer's
//! predictions (T5, F4).
//!
//! Entry points: [`build_executor`] to instantiate a plan, [`run_collect`]
//! to drain it into a vector, [`run_collect_governed`] to drain it under a
//! [`governor::QueryGovernor`] (cancellation, timeout, row/page budgets)
//! while still collecting partial metrics if the query is killed.

// Library code must not panic on fault paths: unwrap/expect are banned
// outside tests (each test module opts back in locally).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod agg;
pub mod columnar;
pub mod executor;
pub mod governor;
pub mod join;
pub mod kernels;
pub mod metrics;
pub mod scan;
pub mod simple;
pub mod sort;

pub use columnar::{ColumnarFilterExec, ColumnarHashAggregateExec, JoinKeyMap, TypedAcc};
pub use executor::{
    build_executor, build_instrumented, run_collect, run_collect_governed,
    run_collect_instrumented, BatchCursor, ExecEnv, Executor,
};
pub use governor::{CancellationToken, GovernorConfig, QueryGovernor};
pub use metrics::{MetricsRegistry, OperatorMetrics, QueryMetrics};

#[cfg(test)]
mod op_tests;
