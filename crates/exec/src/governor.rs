//! Query resource governor: cancellation, timeouts, and I/O budgets.
//!
//! A long-running or runaway query must be stoppable without killing the
//! process, and it must stop *promptly*: the governor is consulted on every
//! operator `next_batch()` call (via [`GovernedExec`]), so a kill takes
//! effect within one batch step of any operator — including deep inside a
//! blocking sort or hash build, whose input operators are each governed
//! too. Kill latency is therefore bounded by the batch size;
//! [`GovernorConfig::max_batch_rows`] caps the batch size governed queries
//! run with (the executor clamps its `batch_rows` to it), trading per-batch
//! amortisation for reaction time.
//!
//! Three independent limits, all optional ([`GovernorConfig`]):
//!
//! * **wall-clock timeout** — a deadline fixed when the governor is created;
//! * **row budget** — output rows counted at the root drain;
//! * **page budget** — buffer-pool traffic (hits + misses) attributed to the
//!   query as a counter delta since the governor was created. This mirrors
//!   how the cost model prices plans, so a budget can be set straight from
//!   an optimizer estimate ("kill anything 100× over its predicted cost").
//!
//! Violations surface as typed errors: [`EvoptError::Canceled`] for an
//! explicit [`CancellationToken::cancel`], [`EvoptError::ResourceExhausted`]
//! for exceeded limits. Both are fault-class errors (`is_fault()`), never
//! panics, and the governed run path still returns partial
//! [`QueryMetrics`](crate::metrics::QueryMetrics) for the killed query.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use evopt_common::{Batch, EvoptError, Result, Schema, DEFAULT_BATCH_ROWS};
use evopt_storage::BufferPool;

use crate::executor::Executor;

/// Shared cancel flag. Clone it out of the engine and flip it from another
/// thread (a Ctrl-C handler, an admission controller) to stop a query.
#[derive(Clone, Debug, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    pub fn new() -> Self {
        CancellationToken::default()
    }

    /// Request cancellation. Idempotent; takes effect within one operator
    /// `next_batch()` call of every governed query holding this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-query resource limits. `None` means unlimited; the default governs
/// nothing (zero overhead beyond an atomic load per `next_batch()`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Maximum wall-clock time for the drain.
    pub timeout: Option<Duration>,
    /// Maximum rows the query may return (counted at the root).
    pub max_rows: Option<u64>,
    /// Maximum buffer-pool page requests (hits + misses) the query may
    /// issue.
    pub max_pages: Option<u64>,
    /// Batch-size cap for governed execution: bounds kill latency (and row
    /// budget overshoot) to this many rows. The executor runs with
    /// `min(batch_rows, max_batch_rows)`.
    pub max_batch_rows: usize,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            timeout: None,
            max_rows: None,
            max_pages: None,
            max_batch_rows: DEFAULT_BATCH_ROWS,
        }
    }
}

impl GovernorConfig {
    /// No limits at all.
    pub fn unlimited() -> Self {
        GovernorConfig::default()
    }

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    pub fn with_max_rows(mut self, rows: u64) -> Self {
        self.max_rows = Some(rows);
        self
    }

    pub fn with_max_pages(mut self, pages: u64) -> Self {
        self.max_pages = Some(pages);
        self
    }

    pub fn with_max_batch_rows(mut self, rows: usize) -> Self {
        self.max_batch_rows = rows.max(1);
        self
    }

    /// Whether any limit is set (an ungoverned build can skip the wrapper;
    /// the batch-size cap alone does not make a query governed).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_rows.is_none() && self.max_pages.is_none()
    }
}

/// Runtime enforcement of one query's [`GovernorConfig`].
///
/// Created per query execution; shared (`Arc`) by every [`GovernedExec`]
/// wrapper in the operator tree plus the root drain loop.
pub struct QueryGovernor {
    config: GovernorConfig,
    token: CancellationToken,
    deadline: Option<Instant>,
    pool: Arc<BufferPool>,
    /// Pool hits+misses at governor creation: the query's page usage is the
    /// delta from here.
    pages_start: u64,
    rows: AtomicU64,
}

impl QueryGovernor {
    pub fn new(config: GovernorConfig, token: CancellationToken, pool: Arc<BufferPool>) -> Self {
        let s = pool.stats();
        QueryGovernor {
            deadline: config.timeout.map(|t| Instant::now() + t),
            config,
            token,
            pages_start: s.hits + s.misses,
            pool,
            rows: AtomicU64::new(0),
        }
    }

    pub fn token(&self) -> CancellationToken {
        self.token.clone()
    }

    /// Buffer-pool page requests attributed to this query so far.
    pub fn pages_used(&self) -> u64 {
        let s = self.pool.stats();
        (s.hits + s.misses).saturating_sub(self.pages_start)
    }

    /// Enforce cancellation, deadline, and the page budget. Called before
    /// every governed `next_batch()`.
    pub fn check(&self) -> Result<()> {
        if self.token.is_canceled() {
            return Err(EvoptError::Canceled("query canceled".into()));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                let timeout = self.config.timeout.unwrap_or_default();
                return Err(EvoptError::ResourceExhausted(format!(
                    "query exceeded timeout of {timeout:?}"
                )));
            }
        }
        if let Some(max_pages) = self.config.max_pages {
            let used = self.pages_used();
            if used > max_pages {
                return Err(EvoptError::ResourceExhausted(format!(
                    "query exceeded page budget: {used} buffer-pool requests > limit {max_pages}"
                )));
            }
        }
        Ok(())
    }

    /// Count a root output batch's rows against the row budget. Called once
    /// per drained batch, so any overshoot past the limit is bounded by one
    /// batch (itself capped at [`GovernorConfig::max_batch_rows`]).
    pub fn record_rows(&self, n: u64) -> Result<()> {
        let produced = self.rows.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max_rows) = self.config.max_rows {
            if produced > max_rows {
                return Err(EvoptError::ResourceExhausted(format!(
                    "query exceeded row budget: {produced} rows > limit {max_rows}"
                )));
            }
        }
        Ok(())
    }
}

/// Decorator that consults the governor before every `next_batch()` of the
/// wrapped operator, so a kill lands within one batch step.
pub struct GovernedExec {
    inner: Box<dyn Executor>,
    governor: Arc<QueryGovernor>,
}

impl GovernedExec {
    pub fn new(inner: Box<dyn Executor>, governor: Arc<QueryGovernor>) -> Self {
        GovernedExec { inner, governor }
    }
}

impl Executor for GovernedExec {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        self.governor.check()?;
        self.inner.next_batch()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use evopt_storage::{DiskManager, PolicyKind};

    fn pool() -> Arc<BufferPool> {
        BufferPool::new(Arc::new(DiskManager::new()), 4, PolicyKind::Lru)
    }

    #[test]
    fn default_config_governs_nothing() {
        let gov = QueryGovernor::new(
            GovernorConfig::unlimited(),
            CancellationToken::new(),
            pool(),
        );
        assert!(gov.check().is_ok());
        for _ in 0..10_000 {
            assert!(gov.record_rows(1).is_ok());
        }
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancellationToken::new();
        let gov = QueryGovernor::new(GovernorConfig::unlimited(), token.clone(), pool());
        assert!(gov.check().is_ok());
        token.cancel();
        match gov.check() {
            Err(EvoptError::Canceled(_)) => {}
            other => panic!("expected Canceled, got {other:?}"),
        }
        // Idempotent and sticky.
        token.cancel();
        assert!(gov.check().is_err());
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let cfg = GovernorConfig::unlimited().with_timeout(Duration::ZERO);
        let gov = QueryGovernor::new(cfg, CancellationToken::new(), pool());
        match gov.check() {
            Err(EvoptError::ResourceExhausted(msg)) => {
                assert!(msg.contains("timeout"), "{msg}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn row_budget_trips_on_excess() {
        let cfg = GovernorConfig::unlimited().with_max_rows(3);
        let gov = QueryGovernor::new(cfg, CancellationToken::new(), pool());
        for _ in 0..3 {
            assert!(gov.record_rows(1).is_ok());
        }
        match gov.record_rows(1) {
            Err(EvoptError::ResourceExhausted(msg)) => {
                assert!(msg.contains("row budget"), "{msg}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn row_budget_counts_whole_batches() {
        let cfg = GovernorConfig::unlimited().with_max_rows(10);
        let gov = QueryGovernor::new(cfg, CancellationToken::new(), pool());
        assert!(gov.record_rows(8).is_ok());
        // The batch that crosses the limit trips it; overshoot is bounded
        // by that batch's size.
        match gov.record_rows(8) {
            Err(EvoptError::ResourceExhausted(msg)) => {
                assert!(msg.contains("16 rows"), "{msg}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn max_batch_rows_defaults_and_clamps() {
        assert_eq!(
            GovernorConfig::unlimited().max_batch_rows,
            DEFAULT_BATCH_ROWS
        );
        assert_eq!(
            GovernorConfig::unlimited()
                .with_max_batch_rows(0)
                .max_batch_rows,
            1
        );
        // The cap alone does not make a query "governed".
        assert!(GovernorConfig::unlimited()
            .with_max_batch_rows(8)
            .is_unlimited());
    }

    #[test]
    fn page_budget_counts_pool_traffic_since_creation() {
        let p = pool();
        // Pre-governor traffic must not count against the budget.
        let id = {
            let warmup = p.new_page().unwrap();
            warmup.id()
        };
        drop(p.fetch(id).unwrap());

        let cfg = GovernorConfig::unlimited().with_max_pages(2);
        let gov = QueryGovernor::new(cfg, CancellationToken::new(), Arc::clone(&p));
        assert_eq!(gov.pages_used(), 0);
        assert!(gov.check().is_ok());

        for _ in 0..3 {
            drop(p.fetch(id).unwrap());
        }
        assert_eq!(gov.pages_used(), 3);
        match gov.check() {
            Err(EvoptError::ResourceExhausted(msg)) => {
                assert!(msg.contains("page budget"), "{msg}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }
}
