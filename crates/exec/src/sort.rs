//! External merge sort.
//!
//! Run formation buffers up to `buffer_pages` worth of tuples, sorts them,
//! and spills each run to a temporary heap file. Merging is fan-in limited
//! to `buffer_pages - 1` runs per pass, with intermediate passes writing
//! new runs — so the physical I/O follows the classic
//! `2 · P · (1 + ⌈log_{B−1}(runs)⌉)` shape the cost model charges. Inputs
//! that fit in the buffer never touch disk. Sorted output is re-batched to
//! `batch_rows` tuples per `next_batch()` call.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use evopt_common::{Batch, Result, Schema, Tuple, Value};
use evopt_storage::heap::HeapScan;
use evopt_storage::HeapFile;

use crate::executor::{invariant, BatchCursor, ExecEnv, Executor};

const USABLE_PAGE_BYTES: usize = 4084;

/// Sort keys: (column ordinal, ascending).
type Keys = Vec<(usize, bool)>;

/// Semantics audit: ORDER BY wants the **total order** (`Value::cmp` —
/// NULLs first, cross-class by rank), not three-valued `sql_cmp`. A
/// comparator returning "unknown" cannot sort; placing NULLs at a defined
/// end is exactly what SQL's NULL ordering rule asks for.
fn compare(a: &Tuple, b: &Tuple, keys: &Keys) -> Ordering {
    for &(col, asc) in keys {
        let (va, vb) = (
            a.value(col).unwrap_or(&Value::Null),
            b.value(col).unwrap_or(&Value::Null),
        );
        let ord = va.cmp(vb);
        let ord = if asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// External merge sort operator.
pub struct SortExec {
    input: Option<BatchCursor>,
    env: ExecEnv,
    keys: Keys,
    schema: Schema,
    /// In-memory result when the input fit in the buffer.
    memory: Option<std::vec::IntoIter<Tuple>>,
    /// Final merge state otherwise.
    merge: Option<MergeState>,
}

struct MergeState {
    scans: Vec<HeapScan>,
    heap: BinaryHeap<HeapEntry>,
    keys: Keys,
}

/// Min-heap entry (reversed comparison).
struct HeapEntry {
    tuple: Tuple,
    run: usize,
    keys: Keys,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        compare(&self.tuple, &other.tuple, &self.keys) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest first.
        compare(&other.tuple, &self.tuple, &self.keys)
    }
}

impl SortExec {
    pub fn new(input: Box<dyn Executor>, env: ExecEnv, keys: Keys) -> Self {
        let schema = input.schema().clone();
        SortExec {
            input: Some(BatchCursor::new(input)),
            env,
            keys,
            schema,
            memory: None,
            merge: None,
        }
    }

    fn budget(&self) -> usize {
        self.env.buffer_pages.max(3) * USABLE_PAGE_BYTES
    }

    fn fan_in(&self) -> usize {
        (self.env.buffer_pages.max(3) - 1).max(2)
    }

    fn prepare(&mut self) -> Result<()> {
        let mut input = invariant(self.input.take(), "sort prepared only once")?;
        let budget = self.budget();
        // Run formation.
        let mut runs: Vec<Arc<HeapFile>> = Vec::new();
        let mut buffer: Vec<Tuple> = Vec::new();
        let mut bytes = 0usize;
        let mut exhausted = false;
        while !exhausted {
            match input.next_row()? {
                Some(t) => {
                    bytes += t.encoded_len();
                    buffer.push(t);
                }
                None => exhausted = true,
            }
            if bytes > budget || (exhausted && !runs.is_empty() && !buffer.is_empty()) {
                buffer.sort_by(|a, b| compare(a, b, &self.keys));
                let run = Arc::new(HeapFile::create(Arc::clone(self.env.catalog.pool()))?);
                for t in buffer.drain(..) {
                    run.insert(&t)?;
                }
                runs.push(run);
                bytes = 0;
            }
        }
        if runs.is_empty() {
            // Everything fit in memory.
            buffer.sort_by(|a, b| compare(a, b, &self.keys));
            self.memory = Some(buffer.into_iter());
            return Ok(());
        }
        self.env.record_spill();
        // Multi-pass merge down to <= fan_in runs.
        let fan_in = self.fan_in();
        while runs.len() > fan_in {
            let mut next_runs = Vec::new();
            for chunk in runs.chunks(fan_in) {
                next_runs.push(self.merge_runs(chunk)?);
            }
            runs = next_runs;
        }
        // Final streaming merge.
        let mut scans: Vec<HeapScan> = runs.iter().map(|r| r.scan()).collect();
        let mut heap = BinaryHeap::new();
        for (i, scan) in scans.iter_mut().enumerate() {
            if let Some(item) = scan.next().transpose()? {
                heap.push(HeapEntry {
                    tuple: item.1,
                    run: i,
                    keys: self.keys.clone(),
                });
            }
        }
        self.merge = Some(MergeState {
            scans,
            heap,
            keys: self.keys.clone(),
        });
        Ok(())
    }

    /// Merge a chunk of sorted runs into one new run on disk.
    fn merge_runs(&self, runs: &[Arc<HeapFile>]) -> Result<Arc<HeapFile>> {
        let out = Arc::new(HeapFile::create(Arc::clone(self.env.catalog.pool()))?);
        let mut scans: Vec<HeapScan> = runs.iter().map(|r| r.scan()).collect();
        let mut heap = BinaryHeap::new();
        for (i, scan) in scans.iter_mut().enumerate() {
            if let Some(item) = scan.next().transpose()? {
                heap.push(HeapEntry {
                    tuple: item.1,
                    run: i,
                    keys: self.keys.clone(),
                });
            }
        }
        while let Some(entry) = heap.pop() {
            out.insert(&entry.tuple)?;
            if let Some(item) = scans[entry.run].next().transpose()? {
                heap.push(HeapEntry {
                    tuple: item.1,
                    run: entry.run,
                    keys: self.keys.clone(),
                });
            }
        }
        Ok(out)
    }
}

impl Executor for SortExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.memory.is_none() && self.merge.is_none() {
            self.prepare()?;
        }
        let batch_rows = self.env.batch_rows;
        if let Some(iter) = &mut self.memory {
            let rows: Vec<Tuple> = iter.by_ref().take(batch_rows).collect();
            if rows.is_empty() {
                return Ok(None);
            }
            return Ok(Some(Batch::new(self.schema.clone(), rows)));
        }
        let state = invariant(self.merge.as_mut(), "merge state prepared")?;
        let mut batch = Batch::with_capacity(self.schema.clone(), batch_rows);
        while batch.len() < batch_rows {
            let Some(entry) = state.heap.pop() else { break };
            if let Some(item) = state.scans[entry.run].next().transpose()? {
                state.heap.push(HeapEntry {
                    tuple: item.1,
                    run: entry.run,
                    keys: state.keys.clone(),
                });
            }
            batch.push(entry.tuple);
        }
        Ok(if batch.is_empty() { None } else { Some(batch) })
    }
}
