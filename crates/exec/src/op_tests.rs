//! Cross-operator executor tests: joins, sort, aggregation — built directly
//! from physical plans (no optimizer involved) so each operator's semantics
//! are pinned down in isolation.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use evopt_catalog::{analyze_table, AnalyzeConfig, Catalog};
use evopt_common::expr::{col, lit};
use evopt_common::{AggFunc, Column, DataType, Expr, Schema, Tuple, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{PhysAgg, PhysOp, PhysicalPlan};
use evopt_storage::{BufferPool, DiskManager, PolicyKind};

use crate::executor::{run_collect, ExecEnv};

/// Two tables:
/// * `l(a INT, tag STRING)` — `n_left` rows, a = i % key_space
/// * `r(b INT, payload INT)` — `n_right` rows, b = i % key_space, indexed
fn join_world(n_left: i64, n_right: i64, key_space: i64, pool_pages: usize) -> ExecEnv {
    let pool = BufferPool::new(Arc::new(DiskManager::new()), pool_pages, PolicyKind::Lru);
    let cat = Arc::new(Catalog::new(pool));
    let l = cat
        .create_table(
            "l",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("tag", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..n_left {
        l.heap
            .insert(&Tuple::new(vec![
                Value::Int(i % key_space),
                Value::Str(format!("L{i}")),
            ]))
            .unwrap();
    }
    let r = cat
        .create_table(
            "r",
            Schema::new(vec![
                Column::new("b", DataType::Int),
                Column::new("payload", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..n_right {
        r.heap
            .insert(&Tuple::new(vec![
                Value::Int(i % key_space),
                Value::Int(i * 100),
            ]))
            .unwrap();
    }
    cat.create_index("r_b", "r", "b", false, false).unwrap();
    // create_index clone-and-swaps r's TableInfo (CoW catalog): re-fetch
    // so the stats land on the registered entry, not a stale snapshot.
    let r = cat.table("r").unwrap();
    analyze_table(&l, &AnalyzeConfig::default()).unwrap();
    analyze_table(&r, &AnalyzeConfig::default()).unwrap();
    ExecEnv::new(cat, 16)
}

fn scan(env: &ExecEnv, t: &str) -> PhysicalPlan {
    PhysicalPlan {
        schema: env.catalog.table(t).unwrap().schema.clone(),
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
        op: PhysOp::SeqScan {
            table: t.into(),
            filter: None,
        },
    }
}

fn plan(op: PhysOp, schema: Schema) -> PhysicalPlan {
    PhysicalPlan {
        op,
        schema,
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
    }
}

/// Reference join result via brute force over the base tables.
fn expected_join(env: &ExecEnv) -> Vec<(i64, String, i64, i64)> {
    let l: Vec<Tuple> = run_collect(&scan(env, "l"), env).unwrap();
    let r: Vec<Tuple> = run_collect(&scan(env, "r"), env).unwrap();
    let mut out = Vec::new();
    for lt in &l {
        for rt in &r {
            if lt.value(0).unwrap().sql_eq(rt.value(0).unwrap()) == Some(true) {
                out.push((
                    lt.value(0).unwrap().as_i64().unwrap(),
                    lt.value(1).unwrap().as_str().unwrap().to_owned(),
                    rt.value(0).unwrap().as_i64().unwrap(),
                    rt.value(1).unwrap().as_i64().unwrap(),
                ));
            }
        }
    }
    out.sort();
    out
}

fn normalise(rows: Vec<Tuple>) -> Vec<(i64, String, i64, i64)> {
    let mut out: Vec<_> = rows
        .into_iter()
        .map(|t| {
            (
                t.value(0).unwrap().as_i64().unwrap(),
                t.value(1).unwrap().as_str().unwrap().to_owned(),
                t.value(2).unwrap().as_i64().unwrap(),
                t.value(3).unwrap().as_i64().unwrap(),
            )
        })
        .collect();
    out.sort();
    out
}

fn join_schema(env: &ExecEnv) -> Schema {
    scan(env, "l").schema.join(&scan(env, "r").schema)
}

#[test]
fn all_join_methods_agree_with_brute_force() {
    let env = join_world(200, 300, 50, 16);
    let want = expected_join(&env);
    assert!(!want.is_empty());
    let schema = join_schema(&env);
    let pred = Some(Expr::eq(col(0), col(2)));

    let nlj = plan(
        PhysOp::NestedLoopJoin {
            left: Box::new(scan(&env, "l")),
            right: Box::new(scan(&env, "r")),
            predicate: pred.clone(),
        },
        schema.clone(),
    );
    assert_eq!(normalise(run_collect(&nlj, &env).unwrap()), want, "NLJ");

    let bnl = plan(
        PhysOp::BlockNestedLoopJoin {
            left: Box::new(scan(&env, "l")),
            right: Box::new(scan(&env, "r")),
            predicate: pred.clone(),
            block_pages: 4,
        },
        schema.clone(),
    );
    assert_eq!(normalise(run_collect(&bnl, &env).unwrap()), want, "BNL");

    let inl = plan(
        PhysOp::IndexNestedLoopJoin {
            outer: Box::new(scan(&env, "l")),
            inner_table: "r".into(),
            index: "r_b".into(),
            outer_key: 0,
            residual: None,
        },
        schema.clone(),
    );
    assert_eq!(normalise(run_collect(&inl, &env).unwrap()), want, "INL");

    let smj = plan(
        PhysOp::SortMergeJoin {
            left: Box::new(plan(
                PhysOp::Sort {
                    input: Box::new(scan(&env, "l")),
                    keys: vec![(0, true)],
                },
                scan(&env, "l").schema,
            )),
            right: Box::new(plan(
                PhysOp::Sort {
                    input: Box::new(scan(&env, "r")),
                    keys: vec![(0, true)],
                },
                scan(&env, "r").schema,
            )),
            left_key: 0,
            right_key: 0,
            residual: None,
        },
        schema.clone(),
    );
    assert_eq!(normalise(run_collect(&smj, &env).unwrap()), want, "SMJ");

    let hj = plan(
        PhysOp::HashJoin {
            left: Box::new(scan(&env, "l")),
            right: Box::new(scan(&env, "r")),
            left_key: 0,
            right_key: 0,
            residual: None,
        },
        schema,
    );
    assert_eq!(normalise(run_collect(&hj, &env).unwrap()), want, "HJ");
}

#[test]
fn null_keys_never_match() {
    let env = join_world(0, 0, 1, 16);
    let l = env.catalog.table("l").unwrap();
    let r = env.catalog.table("r").unwrap();
    l.heap
        .insert(&Tuple::new(vec![
            Value::Null,
            Value::Str("null-left".into()),
        ]))
        .unwrap();
    l.heap
        .insert(&Tuple::new(vec![Value::Int(1), Value::Str("one".into())]))
        .unwrap();
    r.heap
        .insert(&Tuple::new(vec![Value::Null, Value::Int(0)]))
        .unwrap();
    r.heap
        .insert(&Tuple::new(vec![Value::Int(1), Value::Int(100)]))
        .unwrap();
    let schema = join_schema(&env);
    for (name, op) in [
        (
            "HJ",
            PhysOp::HashJoin {
                left: Box::new(scan(&env, "l")),
                right: Box::new(scan(&env, "r")),
                left_key: 0,
                right_key: 0,
                residual: None,
            },
        ),
        (
            "SMJ",
            PhysOp::SortMergeJoin {
                left: Box::new(plan(
                    PhysOp::Sort {
                        input: Box::new(scan(&env, "l")),
                        keys: vec![(0, true)],
                    },
                    scan(&env, "l").schema,
                )),
                right: Box::new(plan(
                    PhysOp::Sort {
                        input: Box::new(scan(&env, "r")),
                        keys: vec![(0, true)],
                    },
                    scan(&env, "r").schema,
                )),
                left_key: 0,
                right_key: 0,
                residual: None,
            },
        ),
        (
            "NLJ",
            PhysOp::NestedLoopJoin {
                left: Box::new(scan(&env, "l")),
                right: Box::new(scan(&env, "r")),
                predicate: Some(Expr::eq(col(0), col(2))),
            },
        ),
    ] {
        let rows = run_collect(&plan(op, schema.clone()), &env).unwrap();
        assert_eq!(rows.len(), 1, "{name}: only 1=1 should match");
        assert_eq!(rows[0].value(1).unwrap(), &Value::Str("one".into()));
    }
}

#[test]
fn hash_join_grace_spills_and_is_correct() {
    // Build side far larger than the 4-page budget → Grace path.
    let env_small_pool = {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        let cat = Arc::new(Catalog::new(pool));
        ExecEnv::new(cat, 4)
    };
    let cat = &env_small_pool.catalog;
    let l = cat
        .create_table(
            "l",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("tag", DataType::Str),
            ]),
        )
        .unwrap();
    let r = cat
        .create_table(
            "r",
            Schema::new(vec![
                Column::new("b", DataType::Int),
                Column::new("payload", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..2000i64 {
        l.heap
            .insert(&Tuple::new(vec![
                Value::Int(i % 500),
                Value::Str(format!("L{i}")),
            ]))
            .unwrap();
        r.heap
            .insert(&Tuple::new(vec![Value::Int(i % 500), Value::Int(i)]))
            .unwrap();
    }
    let env = env_small_pool;
    let want = expected_join(&env);
    let disk_before = env.catalog.pool().disk().snapshot();
    let hj = plan(
        PhysOp::HashJoin {
            left: Box::new(scan(&env, "l")),
            right: Box::new(scan(&env, "r")),
            left_key: 0,
            right_key: 0,
            residual: None,
        },
        join_schema(&env),
    );
    let got = normalise(run_collect(&hj, &env).unwrap());
    assert_eq!(got.len(), want.len());
    assert_eq!(got, want);
    // Grace partitioning wrote temp pages: allocations happened.
    let delta = env.catalog.pool().disk().snapshot().since(&disk_before);
    assert!(delta.allocations > 10, "expected spill, got {delta:?}");
}

#[test]
fn residual_predicates_filter_join_output() {
    let env = join_world(100, 100, 10, 16);
    let schema = join_schema(&env);
    let residual = Some(Expr::binary(evopt_common::BinOp::Gt, col(3), lit(5000i64)));
    let hj = plan(
        PhysOp::HashJoin {
            left: Box::new(scan(&env, "l")),
            right: Box::new(scan(&env, "r")),
            left_key: 0,
            right_key: 0,
            residual: residual.clone(),
        },
        schema,
    );
    let rows = run_collect(&hj, &env).unwrap();
    assert!(!rows.is_empty());
    assert!(rows
        .iter()
        .all(|t| t.value(3).unwrap().as_i64().unwrap() > 5000));
}

#[test]
fn sort_orders_and_handles_desc_and_ties() {
    let env = join_world(500, 0, 7, 16);
    let sorted = plan(
        PhysOp::Sort {
            input: Box::new(scan(&env, "l")),
            keys: vec![(0, false), (1, true)], // a DESC, tag ASC
        },
        scan(&env, "l").schema,
    );
    let rows = run_collect(&sorted, &env).unwrap();
    assert_eq!(rows.len(), 500);
    for w in rows.windows(2) {
        let (a0, a1) = (
            w[0].value(0).unwrap().as_i64().unwrap(),
            w[1].value(0).unwrap().as_i64().unwrap(),
        );
        assert!(a0 >= a1);
        if a0 == a1 {
            assert!(w[0].value(1).unwrap() <= w[1].value(1).unwrap());
        }
    }
}

#[test]
fn external_sort_spills_with_tiny_budget_and_stays_sorted() {
    let env = {
        let pool = BufferPool::new(Arc::new(DiskManager::new()), 64, PolicyKind::Lru);
        let cat = Arc::new(Catalog::new(pool));
        ExecEnv::new(cat, 3) // 3-page sort budget forces many runs
    };
    let t = env
        .catalog
        .create_table(
            "big",
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("pad", DataType::Str),
            ]),
        )
        .unwrap();
    // Insert in descending order to defeat any accidental pre-order.
    for i in (0..5000i64).rev() {
        t.heap
            .insert(&Tuple::new(vec![
                Value::Int(i),
                Value::Str(format!("pad-{i:05}")),
            ]))
            .unwrap();
    }
    let before = env.catalog.pool().disk().snapshot();
    let sorted = plan(
        PhysOp::Sort {
            input: Box::new(scan(&env, "big")),
            keys: vec![(0, true)],
        },
        scan(&env, "big").schema,
    );
    let rows = run_collect(&sorted, &env).unwrap();
    assert_eq!(rows.len(), 5000);
    for (i, t) in rows.iter().enumerate() {
        assert_eq!(t.value(0).unwrap(), &Value::Int(i as i64));
    }
    let delta = env.catalog.pool().disk().snapshot().since(&before);
    assert!(delta.allocations > 20, "expected run spills, got {delta:?}");
}

#[test]
fn aggregate_grouped_and_global() {
    let env = join_world(100, 0, 10, 16);
    let in_schema = scan(&env, "l").schema;
    // GROUP BY a: COUNT(*), MIN(tag)
    let out_schema = Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("n", DataType::Int),
        Column::new("min_tag", DataType::Str),
    ]);
    let agg = plan(
        PhysOp::HashAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![0],
            aggs: vec![
                PhysAgg {
                    func: AggFunc::CountStar,
                    arg: None,
                },
                PhysAgg {
                    func: AggFunc::Min,
                    arg: Some(col(1)),
                },
            ],
        },
        out_schema,
    );
    let mut rows = run_collect(&agg, &env).unwrap();
    rows.sort();
    assert_eq!(rows.len(), 10);
    for t in &rows {
        assert_eq!(t.value(1).unwrap(), &Value::Int(10));
    }
    // Global: SUM, AVG, MAX over column a.
    let out_schema = Schema::new(vec![
        Column::new("s", DataType::Int),
        Column::new("avg", DataType::Float),
        Column::new("mx", DataType::Int),
    ]);
    let agg = plan(
        PhysOp::HashAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![],
            aggs: vec![
                PhysAgg {
                    func: AggFunc::Sum,
                    arg: Some(col(0)),
                },
                PhysAgg {
                    func: AggFunc::Avg,
                    arg: Some(col(0)),
                },
                PhysAgg {
                    func: AggFunc::Max,
                    arg: Some(col(0)),
                },
            ],
        },
        out_schema,
    );
    let rows = run_collect(&agg, &env).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].value(0).unwrap(), &Value::Int(450)); // 10 × (0+..+9)
    assert_eq!(rows[0].value(1).unwrap(), &Value::Float(4.5));
    assert_eq!(rows[0].value(2).unwrap(), &Value::Int(9));
    let _ = in_schema;
}

#[test]
fn aggregate_empty_input_semantics() {
    let env = join_world(0, 0, 1, 16);
    let grouped = plan(
        PhysOp::HashAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![0],
            aggs: vec![PhysAgg {
                func: AggFunc::CountStar,
                arg: None,
            }],
        },
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("n", DataType::Int),
        ]),
    );
    assert_eq!(run_collect(&grouped, &env).unwrap().len(), 0);
    let global = plan(
        PhysOp::HashAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![],
            aggs: vec![
                PhysAgg {
                    func: AggFunc::CountStar,
                    arg: None,
                },
                PhysAgg {
                    func: AggFunc::Sum,
                    arg: Some(col(0)),
                },
            ],
        },
        Schema::new(vec![
            Column::new("n", DataType::Int),
            Column::new("s", DataType::Int),
        ]),
    );
    let rows = run_collect(&global, &env).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].value(0).unwrap(), &Value::Int(0));
    assert_eq!(rows[0].value(1).unwrap(), &Value::Null);
}

#[test]
fn sort_aggregate_matches_hash_aggregate() {
    let env = join_world(500, 0, 13, 16);
    let mk = |sort_based: bool| {
        let sorted_scan = plan(
            PhysOp::Sort {
                input: Box::new(scan(&env, "l")),
                keys: vec![(0, true)],
            },
            scan(&env, "l").schema,
        );
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("n", DataType::Int),
            Column::new("min_tag", DataType::Str),
        ]);
        let group_by = vec![0];
        let aggs = vec![
            PhysAgg {
                func: AggFunc::CountStar,
                arg: None,
            },
            PhysAgg {
                func: AggFunc::Min,
                arg: Some(col(1)),
            },
        ];
        if sort_based {
            plan(
                PhysOp::SortAggregate {
                    input: Box::new(sorted_scan),
                    group_by,
                    aggs,
                },
                schema,
            )
        } else {
            plan(
                PhysOp::HashAggregate {
                    input: Box::new(sorted_scan),
                    group_by,
                    aggs,
                },
                schema,
            )
        }
    };
    let mut hash_rows = run_collect(&mk(false), &env).unwrap();
    hash_rows.sort();
    let sort_rows = run_collect(&mk(true), &env).unwrap();
    // Streaming output is already in group order.
    let mut sorted_copy = sort_rows.clone();
    sorted_copy.sort();
    assert_eq!(sort_rows, sorted_copy, "sort-agg output is ordered");
    assert_eq!(sort_rows, hash_rows);
    assert_eq!(sort_rows.len(), 13);
}

#[test]
fn sort_aggregate_empty_input_semantics() {
    let env = join_world(0, 0, 1, 16);
    let grouped = plan(
        PhysOp::SortAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![0],
            aggs: vec![PhysAgg {
                func: AggFunc::CountStar,
                arg: None,
            }],
        },
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("n", DataType::Int),
        ]),
    );
    assert_eq!(run_collect(&grouped, &env).unwrap().len(), 0);
    let global = plan(
        PhysOp::SortAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![],
            aggs: vec![PhysAgg {
                func: AggFunc::CountStar,
                arg: None,
            }],
        },
        Schema::new(vec![Column::new("n", DataType::Int)]),
    );
    let rows = run_collect(&global, &env).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].value(0).unwrap(), &Value::Int(0));
}

#[test]
fn aggregates_ignore_null_arguments() {
    let env = join_world(0, 0, 1, 16);
    let l = env.catalog.table("l").unwrap();
    for v in [Value::Int(10), Value::Null, Value::Int(20), Value::Null] {
        l.heap
            .insert(&Tuple::new(vec![v, Value::Str("x".into())]))
            .unwrap();
    }
    let agg = plan(
        PhysOp::HashAggregate {
            input: Box::new(scan(&env, "l")),
            group_by: vec![],
            aggs: vec![
                PhysAgg {
                    func: AggFunc::Count,
                    arg: Some(col(0)),
                },
                PhysAgg {
                    func: AggFunc::CountStar,
                    arg: None,
                },
                PhysAgg {
                    func: AggFunc::Avg,
                    arg: Some(col(0)),
                },
            ],
        },
        Schema::new(vec![
            Column::new("c", DataType::Int),
            Column::new("cs", DataType::Int),
            Column::new("avg", DataType::Float),
        ]),
    );
    let rows = run_collect(&agg, &env).unwrap();
    assert_eq!(
        rows[0].value(0).unwrap(),
        &Value::Int(2),
        "COUNT skips nulls"
    );
    assert_eq!(
        rows[0].value(1).unwrap(),
        &Value::Int(4),
        "COUNT(*) counts all"
    );
    assert_eq!(rows[0].value(2).unwrap(), &Value::Float(15.0));
}

#[test]
fn sort_empty_input_and_single_row() {
    let env = join_world(0, 0, 1, 16);
    let sorted = plan(
        PhysOp::Sort {
            input: Box::new(scan(&env, "l")),
            keys: vec![(0, true)],
        },
        scan(&env, "l").schema,
    );
    assert!(run_collect(&sorted, &env).unwrap().is_empty());
    env.catalog
        .table("l")
        .unwrap()
        .heap
        .insert(&Tuple::new(vec![Value::Int(42), Value::Str("only".into())]))
        .unwrap();
    let rows = run_collect(&sorted, &env).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].value(0).unwrap(), &Value::Int(42));
}

#[test]
fn sort_is_stable_enough_for_total_order_and_handles_nulls() {
    let env = join_world(0, 0, 1, 16);
    let l = env.catalog.table("l").unwrap();
    for v in [
        Value::Int(3),
        Value::Null,
        Value::Int(1),
        Value::Null,
        Value::Int(2),
    ] {
        l.heap
            .insert(&Tuple::new(vec![v, Value::Str("x".into())]))
            .unwrap();
    }
    let sorted = plan(
        PhysOp::Sort {
            input: Box::new(scan(&env, "l")),
            keys: vec![(0, true)],
        },
        scan(&env, "l").schema,
    );
    let rows = run_collect(&sorted, &env).unwrap();
    // NULLs first under the total order, then 1, 2, 3.
    assert!(rows[0].value(0).unwrap().is_null());
    assert!(rows[1].value(0).unwrap().is_null());
    let tail: Vec<i64> = rows[2..]
        .iter()
        .map(|t| t.value(0).unwrap().as_i64().unwrap())
        .collect();
    assert_eq!(tail, vec![1, 2, 3]);
}

#[test]
fn merge_join_all_duplicates_cross_within_group() {
    // 20 x 20 identical keys: SMJ must emit the full 400-row cross of the
    // group without losing or duplicating pairs.
    let env = join_world(20, 20, 1, 16);
    let schema = join_schema(&env);
    let smj = plan(
        PhysOp::SortMergeJoin {
            left: Box::new(plan(
                PhysOp::Sort {
                    input: Box::new(scan(&env, "l")),
                    keys: vec![(0, true)],
                },
                scan(&env, "l").schema,
            )),
            right: Box::new(plan(
                PhysOp::Sort {
                    input: Box::new(scan(&env, "r")),
                    keys: vec![(0, true)],
                },
                scan(&env, "r").schema,
            )),
            left_key: 0,
            right_key: 0,
            residual: None,
        },
        schema,
    );
    let rows = run_collect(&smj, &env).unwrap();
    assert_eq!(rows.len(), 400);
}

#[test]
fn bnl_io_grows_as_pool_block_shrinks() {
    // The F4/BNL shape measured for real: same join, two block sizes.
    let measure = |block_pages: usize| -> u64 {
        let env = join_world(3000, 3000, 100, 8); // tiny pool: reads are physical
        let hj = plan(
            PhysOp::BlockNestedLoopJoin {
                left: Box::new(scan(&env, "l")),
                right: Box::new(scan(&env, "r")),
                predicate: Some(Expr::eq(col(0), col(2))),
                block_pages,
            },
            join_schema(&env),
        );
        let before = env.catalog.pool().disk().snapshot();
        let rows = run_collect(&hj, &env).unwrap();
        assert_eq!(rows.len(), 3000 * 30);
        env.catalog.pool().disk().snapshot().since(&before).reads
    };
    let small = measure(3);
    let large = measure(64);
    assert!(
        small > large,
        "3-page blocks should re-read the inner more: {small} <= {large}"
    );
}
