//! Query-lifecycle observability: per-operator runtime metrics.
//!
//! The optimizer annotates every [`PhysicalPlan`] node with an estimated
//! cardinality; this module measures what each operator *actually* did —
//! rows produced, `next_batch()` calls, wall-clock time, and
//! buffer-pool/disk traffic attributed via counter deltas taken around every
//! `next_batch()` call. Because execution is batch-at-a-time, the two clock
//! reads and four counter snapshots per measurement amortise over up to
//! `batch_rows` tuples instead of being paid per row. The
//! estimate-vs-actual pairing (and its q-error) is the feedback signal the
//! cost-model validation experiments and `EXPLAIN ANALYZE` surface.
//!
//! Attribution model: each instrumented operator accumulates **inclusive**
//! numbers (itself plus everything beneath it), exactly like PostgreSQL's
//! `EXPLAIN ANALYZE`. Per-node exclusive figures are derivable because
//! [`QueryMetrics::operators`] is stored in plan pre-order with each node's
//! subtree size.
//!
//! Operators and metric slots are correlated by *pre-order index*: the
//! instrumented builder (`build_instrumented`) walks the plan in the same
//! order as [`PhysicalPlan::pre_order`]. A nested-loop join re-opens its
//! inner subtree once per outer row; every re-open binds to the same metric
//! slots, so inner-side counters accumulate across re-opens.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use evopt_common::{Batch, Result, Schema};
use evopt_core::physical::PhysicalPlan;
use evopt_storage::{BufferPool, IoSnapshot, PoolSnapshot};

use crate::executor::Executor;

/// Shared, thread-safe accumulator for one operator's runtime counters.
#[derive(Debug, Default)]
pub struct OpMetrics {
    output_rows: AtomicU64,
    next_calls: AtomicU64,
    elapsed_ns: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
}

impl OpMetrics {
    fn record(&self, rows: u64, elapsed: Duration, pool: PoolSnapshot, io: IoSnapshot) {
        self.output_rows.fetch_add(rows, Ordering::Relaxed);
        self.next_calls.fetch_add(1, Ordering::Relaxed);
        self.elapsed_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.pool_hits.fetch_add(pool.hits, Ordering::Relaxed);
        self.pool_misses.fetch_add(pool.misses, Ordering::Relaxed);
        self.disk_reads.fetch_add(io.reads, Ordering::Relaxed);
        self.disk_writes.fetch_add(io.writes, Ordering::Relaxed);
    }
}

/// One metric slot per plan node, in pre-order. Cheap to clone (the nested
/// `Arc`s are shared) so re-opened subtrees can rebind to their slots.
#[derive(Clone)]
pub struct MetricsRegistry {
    nodes: Arc<Vec<Arc<OpMetrics>>>,
}

impl MetricsRegistry {
    pub fn for_plan(plan: &PhysicalPlan) -> MetricsRegistry {
        MetricsRegistry {
            nodes: Arc::new(
                (0..plan.node_count())
                    .map(|_| Arc::new(OpMetrics::default()))
                    .collect(),
            ),
        }
    }

    pub fn node(&self, pre_order_idx: usize) -> Arc<OpMetrics> {
        Arc::clone(&self.nodes[pre_order_idx])
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Decorator that meters every `next_batch()` of the wrapped operator.
pub struct InstrumentedExec {
    inner: Box<dyn Executor>,
    metrics: Arc<OpMetrics>,
    pool: Arc<BufferPool>,
}

impl InstrumentedExec {
    pub fn new(inner: Box<dyn Executor>, metrics: Arc<OpMetrics>, pool: Arc<BufferPool>) -> Self {
        InstrumentedExec {
            inner,
            metrics,
            pool,
        }
    }
}

impl Executor for InstrumentedExec {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let pool_before = self.pool.stats();
        let io_before = self.pool.disk().snapshot();
        let start = Instant::now();
        let out = self.inner.next_batch();
        let elapsed = start.elapsed();
        let pool_delta = self.pool.stats().since(&pool_before);
        let io_delta = self.pool.disk().snapshot().since(&io_before);
        let rows = match &out {
            Ok(Some(batch)) => batch.len() as u64,
            _ => 0,
        };
        self.metrics.record(rows, elapsed, pool_delta, io_delta);
        out
    }
}

/// Runtime truth for one operator, paired with the optimizer's estimate.
/// Pool/disk/time figures are **inclusive** of the operator's subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorMetrics {
    /// Operator name (`SeqScan`, `HashJoin`, ...).
    pub op: String,
    /// One-line operator description from the plan.
    pub detail: String,
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// Nodes in this operator's subtree, itself included. Together with
    /// pre-order placement this reconstructs the tree shape.
    pub subtree_size: usize,
    /// Optimizer's cardinality estimate.
    pub est_rows: f64,
    /// Rows this operator actually emitted.
    pub actual_rows: u64,
    /// `next_batch()` invocations (number of batches + 1 for a fully
    /// drained operator; more for a nested-loop inner that is re-opened per
    /// outer row). With actual_rows this gives the realised mean batch
    /// fill.
    pub next_calls: u64,
    /// Wall-clock time spent inside this operator's subtree.
    pub elapsed: Duration,
    /// Buffer-pool hits during this subtree's `next_batch()` calls.
    pub pool_hits: u64,
    /// Buffer-pool misses during this subtree's `next_batch()` calls.
    pub pool_misses: u64,
    /// Physical page reads during this subtree's `next_batch()` calls.
    pub disk_reads: u64,
    /// Physical page writes during this subtree's `next_batch()` calls.
    pub disk_writes: u64,
}

impl OperatorMetrics {
    /// The q-error of the cardinality estimate: `max(est/actual,
    /// actual/est)`, both sides clamped to ≥ 1 row (the standard convention
    /// so empty results don't divide by zero). 1.0 means a perfect estimate;
    /// it is symmetric in over- and under-estimation.
    pub fn q_error(&self) -> f64 {
        let est = self.est_rows.max(1.0);
        let actual = (self.actual_rows as f64).max(1.0);
        (est / actual).max(actual / est)
    }
}

/// Everything a query's execution revealed: per-operator truth plus
/// query-level totals. Returned by the instrumented execution paths and
/// attached to `QueryResult::Rows` by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMetrics {
    /// Per-operator metrics in plan pre-order (root first).
    pub operators: Vec<OperatorMetrics>,
    /// End-to-end wall-clock of the drain (build + all `next_batch()`
    /// calls).
    pub elapsed: Duration,
    /// Buffer-pool hits across the whole query.
    pub pool_hits: u64,
    /// Buffer-pool misses across the whole query.
    pub pool_misses: u64,
    /// Physical page reads across the whole query.
    pub disk_reads: u64,
    /// Physical page writes across the whole query.
    pub disk_writes: u64,
}

impl QueryMetrics {
    /// Assemble from a drained registry. `plan` must be the plan the
    /// registry was created for.
    pub fn collect(
        plan: &PhysicalPlan,
        registry: &MetricsRegistry,
        elapsed: Duration,
        pool: PoolSnapshot,
        io: IoSnapshot,
    ) -> QueryMetrics {
        let pre = plan.pre_order();
        debug_assert_eq!(pre.len(), registry.len(), "registry/plan shape mismatch");
        let operators = pre
            .iter()
            .enumerate()
            .map(|(i, (depth, node))| {
                let m = registry.node(i);
                OperatorMetrics {
                    op: node.op_name().to_string(),
                    detail: node.op_detail(),
                    depth: *depth,
                    subtree_size: node.node_count(),
                    est_rows: node.est_rows,
                    actual_rows: m.output_rows.load(Ordering::Relaxed),
                    next_calls: m.next_calls.load(Ordering::Relaxed),
                    elapsed: Duration::from_nanos(m.elapsed_ns.load(Ordering::Relaxed)),
                    pool_hits: m.pool_hits.load(Ordering::Relaxed),
                    pool_misses: m.pool_misses.load(Ordering::Relaxed),
                    disk_reads: m.disk_reads.load(Ordering::Relaxed),
                    disk_writes: m.disk_writes.load(Ordering::Relaxed),
                }
            })
            .collect();
        QueryMetrics {
            operators,
            elapsed,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            disk_reads: io.reads,
            disk_writes: io.writes,
        }
    }

    /// The root operator's metrics (its `actual_rows` is the result size).
    pub fn root(&self) -> &OperatorMetrics {
        &self.operators[0]
    }

    /// Buffer-pool hit rate over the whole query (1.0 when the pool was
    /// never touched).
    pub fn hit_rate(&self) -> f64 {
        PoolSnapshot {
            hits: self.pool_hits,
            misses: self.pool_misses,
            ..PoolSnapshot::default()
        }
        .hit_rate()
    }

    /// Worst per-operator q-error — the single number that says how far the
    /// optimizer's cardinality model drifted on this query.
    pub fn max_q_error(&self) -> f64 {
        self.operators
            .iter()
            .map(|o| o.q_error())
            .fold(1.0, f64::max)
    }

    /// `EXPLAIN ANALYZE` rendering: the physical tree annotated with
    /// estimate-vs-actual truth per operator, then query totals.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for op in &self.operators {
            for _ in 0..op.depth {
                s.push_str("  ");
            }
            s.push_str(&format!(
                "{}  (est rows={:.0}, actual rows={}, q-err={:.2}, nexts={}, time={}, \
                 pool={}h/{}m, disk r/w={}/{})\n",
                op.detail,
                op.est_rows,
                op.actual_rows,
                op.q_error(),
                op.next_calls,
                fmt_duration(op.elapsed),
                op.pool_hits,
                op.pool_misses,
                op.disk_reads,
                op.disk_writes,
            ));
        }
        s.push_str(&format!(
            "== query totals ==\nelapsed: {}\nbuffer pool: {} hits, {} misses (hit rate {:.1}%)\n\
             disk: {} page reads, {} page writes\nmax q-error: {:.2}\n",
            fmt_duration(self.elapsed),
            self.pool_hits,
            self.pool_misses,
            self.hit_rate() * 100.0,
            self.disk_reads,
            self.disk_writes,
            self.max_q_error(),
        ));
        s
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn op(est: f64, actual: u64) -> OperatorMetrics {
        OperatorMetrics {
            op: "SeqScan".into(),
            detail: "SeqScan: t".into(),
            depth: 0,
            subtree_size: 1,
            est_rows: est,
            actual_rows: actual,
            next_calls: actual + 1,
            elapsed: Duration::from_micros(5),
            pool_hits: 0,
            pool_misses: 0,
            disk_reads: 0,
            disk_writes: 0,
        }
    }

    #[test]
    fn q_error_symmetric_and_clamped() {
        assert_eq!(op(100.0, 100).q_error(), 1.0);
        assert_eq!(op(200.0, 100).q_error(), 2.0);
        assert_eq!(op(50.0, 100).q_error(), 2.0);
        // Zero-row sides clamp to 1 instead of dividing by zero.
        assert_eq!(op(0.0, 0).q_error(), 1.0);
        assert_eq!(op(8.0, 0).q_error(), 8.0);
    }

    #[test]
    fn max_q_error_over_operators() {
        let m = QueryMetrics {
            operators: vec![op(100.0, 100), op(10.0, 40), op(7.0, 7)],
            elapsed: Duration::from_millis(1),
            pool_hits: 3,
            pool_misses: 1,
            disk_reads: 1,
            disk_writes: 0,
        };
        assert_eq!(m.max_q_error(), 4.0);
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(m.root().actual_rows, 100);
    }

    #[test]
    fn render_contains_annotations() {
        let m = QueryMetrics {
            operators: vec![op(100.0, 99)],
            elapsed: Duration::from_millis(2),
            pool_hits: 5,
            pool_misses: 2,
            disk_reads: 2,
            disk_writes: 1,
        };
        let text = m.render();
        assert!(text.contains("est rows=100"), "{text}");
        assert!(text.contains("actual rows=99"), "{text}");
        assert!(text.contains("q-err="), "{text}");
        assert!(text.contains("== query totals =="), "{text}");
        assert!(text.contains("5 hits, 2 misses"), "{text}");
        assert!(text.contains("2 page reads, 1 page writes"), "{text}");
    }
}
