//! Columnar operators: type-specialized filter, hash-join key index, and
//! hash aggregation.
//!
//! These are the ported "hot" operators of the columnar migration. Each
//! still speaks the row [`Batch`] protocol at its operator boundary (so
//! instrumentation, the governor, and unported operators compose
//! unchanged) but internally transposes the columns it needs into
//! [`ColumnVector`]s and runs typed kernels over them:
//!
//! * [`ColumnarFilterExec`] — compiles the predicate via
//!   [`crate::kernels::compile_predicate`] and evaluates it as selection
//!   vectors over typed columns; falls back to row-at-a-time evaluation
//!   for unsupported predicate shapes.
//! * [`JoinKeyMap`] — the hash join's typed build-side index: key columns
//!   are extracted in bulk and hashed as native `i64`/`f64`-bits/`String`
//!   keys instead of `Value` enums. NULL keys are excluded at build and
//!   probe (SQL: NULL never joins), and a representation mismatch at probe
//!   time degrades — lazily, exactly once — to the `Value`-keyed map whose
//!   `Eq`/`Hash` are the row path's semantics, so results are identical by
//!   construction.
//! * [`ColumnarHashAggregateExec`] — typed accumulators (native `i64`/`f64`
//!   SUM/MIN/MAX/COUNT states) fed from column vectors, with a
//!   single-`Int`-column group-key fast path.
//!
//! Row-mode (`DatabaseConfig::columnar = false`) keeps the original row
//! operators alive as the differential baseline; `tests/null_semantics.rs`
//! and `tests/batch_equivalence.rs` assert both modes agree bit-for-bit.

use std::collections::HashMap;

use evopt_common::columnar::{cell_cmp, Cell, ColumnData, ColumnVector};
use evopt_common::{AggFunc, Batch, EvoptError, Expr, Result, Schema, Tuple, Value};
use evopt_core::physical::PhysAgg;

use crate::executor::{invariant, Executor};
use crate::kernels::{compile_predicate, Kernel};

// ---------------------------------------------------------------------------
// Columnar filter
// ---------------------------------------------------------------------------

/// Filter over typed column vectors: extracts only the columns the
/// predicate references, evaluates the compiled kernel to a selection
/// vector, and gathers the surviving rows.
pub struct ColumnarFilterExec {
    input: Box<dyn Executor>,
    predicate: Expr,
    kernel: Option<Kernel>,
    referenced: Vec<usize>,
}

impl ColumnarFilterExec {
    pub fn new(input: Box<dyn Executor>, predicate: Expr) -> Self {
        let kernel = compile_predicate(&predicate);
        let referenced = kernel
            .as_ref()
            .map(Kernel::referenced_columns)
            .unwrap_or_default();
        ColumnarFilterExec {
            input,
            predicate,
            kernel,
            referenced,
        }
    }
}

impl Executor for ColumnarFilterExec {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let width = self.input.schema().len();
        // A batch may filter down to nothing; keep pulling so an emitted
        // batch is never empty.
        while let Some(batch) = self.input.next_batch()? {
            let (schema, rows) = batch.into_parts();
            let kept = match &self.kernel {
                Some(kernel) => {
                    let mut cols: Vec<Option<ColumnVector>> = Vec::new();
                    cols.resize_with(width, || None);
                    for &c in &self.referenced {
                        if c < width {
                            cols[c] = Some(ColumnVector::from_rows(&rows, c)?);
                        }
                    }
                    let all: Vec<u32> = (0..rows.len() as u32).collect();
                    let sel = kernel.eval(&cols, &all)?;
                    if sel.len() == rows.len() {
                        rows
                    } else {
                        gather(rows, &sel)
                    }
                }
                // Unsupported predicate shape: exact row-at-a-time path.
                None => {
                    let mut kept = Vec::with_capacity(rows.len());
                    for t in rows {
                        if self.predicate.eval_predicate(&t)? {
                            kept.push(t);
                        }
                    }
                    kept
                }
            };
            if !kept.is_empty() {
                return Ok(Some(Batch::new(schema, kept)));
            }
        }
        Ok(None)
    }
}

/// Keep the rows at the (sorted ascending) selected indices, in order.
fn gather(rows: Vec<Tuple>, sel: &[u32]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(sel.len());
    let mut next = sel.iter().copied();
    let mut want = next.next();
    for (i, t) in rows.into_iter().enumerate() {
        match want {
            Some(w) if w as usize == i => {
                out.push(t);
                want = next.next();
            }
            Some(_) => {}
            None => break,
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Typed hash-join key index
// ---------------------------------------------------------------------------

const NO_MATCHES: &[u32] = &[];

/// Build-side key index for the in-memory hash join: maps a key to the
/// build-row indices carrying it. The representation is chosen from the
/// build keys' runtime variants; NULL keys are never inserted.
pub enum JoinKeyMap {
    /// All build keys are `Int`.
    Int(HashMap<i64, Vec<u32>>),
    /// All build keys are `Float`, keyed by `to_bits` (the total order —
    /// and therefore SQL equality on non-null floats — distinguishes
    /// values iff their bits differ).
    Float(HashMap<u64, Vec<u32>>),
    /// All build keys are `Str`.
    Str(HashMap<String, Vec<u32>>),
    /// Mixed variants: `Value`-keyed, same `Eq`/`Hash` as the row path.
    Val(HashMap<Value, Vec<u32>>),
}

impl JoinKeyMap {
    /// Index `rows` by the key column. Rows with NULL keys are skipped —
    /// they can never match a probe.
    pub fn build(rows: &[Tuple], key: usize) -> Result<JoinKeyMap> {
        // One scan to pick the representation.
        let mut variant: Option<u8> = None; // 0=Int 1=Float 3=Str
        let mut mixed = false;
        for t in rows {
            let tag = match t.value(key)? {
                Value::Null => continue,
                Value::Int(_) => 0,
                Value::Float(_) => 1,
                Value::Str(_) => 3,
                Value::Bool(_) => 4,
            };
            match variant {
                None => variant = Some(tag),
                Some(v) if v == tag => {}
                Some(_) => {
                    mixed = true;
                    break;
                }
            }
        }
        if mixed || variant == Some(4) {
            return Self::build_val(rows, key);
        }
        match variant {
            None | Some(0) => {
                let mut map: HashMap<i64, Vec<u32>> = HashMap::new();
                for (i, t) in rows.iter().enumerate() {
                    if let Value::Int(k) = t.value(key)? {
                        map.entry(*k).or_default().push(i as u32);
                    }
                }
                Ok(JoinKeyMap::Int(map))
            }
            Some(1) => {
                let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
                for (i, t) in rows.iter().enumerate() {
                    if let Value::Float(k) = t.value(key)? {
                        map.entry(k.to_bits()).or_default().push(i as u32);
                    }
                }
                Ok(JoinKeyMap::Float(map))
            }
            _ => {
                let mut map: HashMap<String, Vec<u32>> = HashMap::new();
                for (i, t) in rows.iter().enumerate() {
                    if let Value::Str(k) = t.value(key)? {
                        map.entry(k.clone()).or_default().push(i as u32);
                    }
                }
                Ok(JoinKeyMap::Str(map))
            }
        }
    }

    fn build_val(rows: &[Tuple], key: usize) -> Result<JoinKeyMap> {
        let mut map: HashMap<Value, Vec<u32>> = HashMap::new();
        for (i, t) in rows.iter().enumerate() {
            let k = t.value(key)?;
            if k.is_null() {
                continue;
            }
            map.entry(k.clone()).or_default().push(i as u32);
        }
        Ok(JoinKeyMap::Val(map))
    }

    /// Build-row indices matching a probe key cell. NULL probes match
    /// nothing. A probe whose variant the typed map cannot answer exactly
    /// (an `Int` probe against a `Float`-keyed map is fine — bit-keys
    /// reproduce `total_cmp` equality — but a `Float` probe against an
    /// `Int`-keyed map is not representable) degrades the map, once, to
    /// the `Value`-keyed form whose semantics are the row path's.
    pub fn lookup(&mut self, cell: Cell<'_>, rows: &[Tuple], key: usize) -> Result<&[u32]> {
        let degrade = matches!((&*self, &cell), (JoinKeyMap::Int(_), Cell::F(_)));
        if degrade {
            *self = match Self::build_val(rows, key)? {
                m @ JoinKeyMap::Val(_) => m,
                _ => return Err(EvoptError::Internal("join key map degrade".into())),
            };
        }
        Ok(match (&*self, cell) {
            (_, Cell::Null) => NO_MATCHES,
            (JoinKeyMap::Int(map), Cell::I(k)) => {
                map.get(&k).map(Vec::as_slice).unwrap_or(NO_MATCHES)
            }
            // Build keys are all Int: a Bool/Str probe is cross-class and
            // can never compare Equal.
            (JoinKeyMap::Int(_), _) => NO_MATCHES,
            (JoinKeyMap::Float(map), Cell::F(k)) => map
                .get(&k.to_bits())
                .map(Vec::as_slice)
                .unwrap_or(NO_MATCHES),
            // Int probe vs Float build keys: SQL equality is
            // `(i as f64).total_cmp(k) == Equal`, i.e. identical bits.
            (JoinKeyMap::Float(map), Cell::I(k)) => map
                .get(&(k as f64).to_bits())
                .map(Vec::as_slice)
                .unwrap_or(NO_MATCHES),
            (JoinKeyMap::Float(_), _) => NO_MATCHES,
            (JoinKeyMap::Str(map), Cell::S(k)) => {
                map.get(k).map(Vec::as_slice).unwrap_or(NO_MATCHES)
            }
            (JoinKeyMap::Str(_), _) => NO_MATCHES,
            (JoinKeyMap::Val(map), cell) => map
                .get(&cell.to_value())
                .map(Vec::as_slice)
                .unwrap_or(NO_MATCHES),
        })
    }
}

// ---------------------------------------------------------------------------
// Typed accumulators
// ---------------------------------------------------------------------------

/// Running SUM total: stays `I` (exact, overflow-checked) until the first
/// `Float` input promotes it, mirroring `Value::add` coercion.
#[derive(Debug, Clone, Copy)]
pub enum SumState {
    I(i64),
    F(f64),
}

impl SumState {
    fn as_value(&self) -> Value {
        match self {
            SumState::I(x) => Value::Int(*x),
            SumState::F(x) => Value::Float(*x),
        }
    }
}

/// Running MIN/MAX champion: typed fast states for the numeric common
/// case, `V` for the rest (Bool/Str), `Empty` before any non-null input.
#[derive(Debug, Clone)]
pub enum MinMaxState {
    Empty,
    I(i64),
    F(f64),
    V(Value),
}

impl MinMaxState {
    fn as_cell(&self) -> Cell<'_> {
        match self {
            MinMaxState::Empty => Cell::Null,
            MinMaxState::I(x) => Cell::I(*x),
            MinMaxState::F(x) => Cell::F(*x),
            MinMaxState::V(v) => Cell::of(v),
        }
    }

    fn set(&mut self, cell: Cell<'_>) {
        *self = match cell {
            Cell::I(x) => MinMaxState::I(x),
            Cell::F(x) => MinMaxState::F(x),
            other => MinMaxState::V(other.to_value()),
        };
    }

    fn finish(&self) -> Value {
        match self {
            MinMaxState::Empty => Value::Null,
            MinMaxState::I(x) => Value::Int(*x),
            MinMaxState::F(x) => Value::Float(*x),
            MinMaxState::V(v) => v.clone(),
        }
    }
}

/// One running aggregate over cells: the typed mirror of the row path's
/// `Accumulator`, with native `i64`/`f64` hot paths. Semantics are
/// identical, including `SUM`'s `Int`-until-a-`Float`-appears result type,
/// integer-overflow errors, and total-order MIN/MAX.
#[derive(Debug, Clone)]
pub enum TypedAcc {
    Count(i64),
    Sum { state: SumState, seen: bool },
    Min(MinMaxState),
    Max(MinMaxState),
    Avg { total: f64, count: i64 },
}

impl TypedAcc {
    pub fn new(func: AggFunc) -> TypedAcc {
        match func {
            AggFunc::Count | AggFunc::CountStar => TypedAcc::Count(0),
            // SUM starts at Int(0) like the row accumulator: the result
            // stays Int while every input is Int.
            AggFunc::Sum => TypedAcc::Sum {
                state: SumState::I(0),
                seen: false,
            },
            AggFunc::Min => TypedAcc::Min(MinMaxState::Empty),
            AggFunc::Max => TypedAcc::Max(MinMaxState::Empty),
            AggFunc::Avg => TypedAcc::Avg {
                total: 0.0,
                count: 0,
            },
        }
    }

    /// Feed one argument cell. NULLs are ignored (SQL aggregate semantics).
    pub fn update(&mut self, cell: Cell<'_>) -> Result<()> {
        match self {
            TypedAcc::Count(n) => {
                if !cell.is_null() {
                    *n += 1;
                }
            }
            TypedAcc::Sum { state, seen } => match (*state, cell) {
                (_, Cell::Null) => {}
                (SumState::I(a), Cell::I(b)) => {
                    *state =
                        SumState::I(a.checked_add(b).ok_or_else(|| {
                            EvoptError::Execution("integer overflow in +".into())
                        })?);
                    *seen = true;
                }
                (SumState::I(a), Cell::F(b)) => {
                    *state = SumState::F(a as f64 + b);
                    *seen = true;
                }
                (SumState::F(a), Cell::I(b)) => {
                    *state = SumState::F(a + b as f64);
                    *seen = true;
                }
                (SumState::F(a), Cell::F(b)) => {
                    *state = SumState::F(a + b);
                    *seen = true;
                }
                (cur, other) => {
                    // Same error the row path's `Value::add` raises.
                    return Err(EvoptError::Execution(format!(
                        "cannot apply + to {:?} and {:?}",
                        cur.as_value(),
                        other.to_value()
                    )));
                }
            },
            TypedAcc::Min(cur) => {
                if !cell.is_null() {
                    let replace = match cur {
                        MinMaxState::Empty => true,
                        _ => cell_cmp(cell, cur.as_cell()) == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        cur.set(cell);
                    }
                }
            }
            TypedAcc::Max(cur) => {
                if !cell.is_null() {
                    let replace = match cur {
                        MinMaxState::Empty => true,
                        _ => cell_cmp(cell, cur.as_cell()) == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        cur.set(cell);
                    }
                }
            }
            TypedAcc::Avg { total, count } => match cell {
                Cell::I(x) => {
                    *total += x as f64;
                    *count += 1;
                }
                Cell::F(x) => {
                    *total += x;
                    *count += 1;
                }
                // Non-numeric (and NULL) arguments are skipped, mirroring
                // the row accumulator's `as_f64` gate.
                _ => {}
            },
        }
        Ok(())
    }

    /// Count one row regardless of argument (COUNT(*)).
    pub fn count_row(&mut self) {
        if let TypedAcc::Count(n) = self {
            *n += 1;
        }
    }

    pub fn finish(&self) -> Value {
        match self {
            TypedAcc::Count(n) => Value::Int(*n),
            TypedAcc::Sum { state, seen } => {
                if *seen {
                    state.as_value()
                } else {
                    Value::Null
                }
            }
            TypedAcc::Min(s) | TypedAcc::Max(s) => s.finish(),
            TypedAcc::Avg { total, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*total / *count as f64)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Columnar hash aggregation
// ---------------------------------------------------------------------------

/// Group-key index. GROUP BY deliberately uses total-order equality —
/// `Null == Null` groups all NULL keys into one group, which is SQL's
/// grouping rule (unlike join keys; see `Value::sql_key_eq`). The typed
/// fast path keys a single `Int` group column as `Option<i64>` (`None` =
/// the NULL group) and degrades to the generic `Vec<Value>` map when a
/// batch shows any other variant.
enum GroupKeys {
    Int(HashMap<Option<i64>, u32>),
    Generic(HashMap<Vec<Value>, u32>),
}

/// Hash aggregation over column vectors with [`TypedAcc`] accumulators.
pub struct ColumnarHashAggregateExec {
    input: Option<Box<dyn Executor>>,
    group_by: Vec<usize>,
    aggs: Vec<PhysAgg>,
    schema: Schema,
    batch_rows: usize,
    results: Option<std::vec::IntoIter<Tuple>>,
}

impl ColumnarHashAggregateExec {
    pub fn new(
        input: Box<dyn Executor>,
        group_by: Vec<usize>,
        aggs: Vec<PhysAgg>,
        schema: Schema,
        batch_rows: usize,
    ) -> Self {
        ColumnarHashAggregateExec {
            input: Some(input),
            group_by,
            aggs,
            schema,
            batch_rows: batch_rows.max(1),
            results: None,
        }
    }

    fn compute(&mut self) -> Result<()> {
        let mut input = invariant(self.input.take(), "aggregate computed only once")?;
        let mut keys = if self.group_by.len() == 1 {
            GroupKeys::Int(HashMap::new())
        } else {
            GroupKeys::Generic(HashMap::new())
        };
        // First-seen group order; `group_values` doubles as the output key
        // prefix of each result row.
        let mut group_values: Vec<Vec<Value>> = Vec::new();
        let mut accs: Vec<Vec<TypedAcc>> = Vec::new();
        let fresh = |aggs: &[PhysAgg]| -> Vec<TypedAcc> {
            aggs.iter().map(|a| TypedAcc::new(a.func)).collect()
        };

        while let Some(batch) = input.next_batch()? {
            let rows = batch.into_rows();
            // Extract the single group column (typed path) and any
            // plain-column aggregate arguments once per batch.
            let group_col = match (&keys, self.group_by.first()) {
                (GroupKeys::Int(_), Some(&g)) => Some(ColumnVector::from_rows(&rows, g)?),
                _ => None,
            };
            // A non-Int variant in the group column ends the typed path:
            // migrate the accumulated groups to the generic map.
            let group_col = match group_col {
                Some(cv) if matches!(cv.data, ColumnData::Int(_)) => Some(cv),
                Some(_) => {
                    if let GroupKeys::Int(_) = &keys {
                        let mut generic: HashMap<Vec<Value>, u32> = HashMap::new();
                        for (idx, gv) in group_values.iter().enumerate() {
                            generic.insert(gv.clone(), idx as u32);
                        }
                        keys = GroupKeys::Generic(generic);
                    }
                    None
                }
                None => None,
            };
            let mut arg_cols: Vec<Option<ColumnVector>> = Vec::with_capacity(self.aggs.len());
            for spec in &self.aggs {
                arg_cols.push(match (&spec.func, &spec.arg) {
                    (AggFunc::CountStar, _) => None,
                    (_, Some(Expr::Column(c))) => Some(ColumnVector::from_rows(&rows, *c)?),
                    _ => None,
                });
            }

            for (r, t) in rows.iter().enumerate() {
                let gidx = match (&mut keys, &group_col) {
                    (GroupKeys::Int(map), Some(cv)) => {
                        let k = match cv.cell(r) {
                            Cell::I(i) => Some(i),
                            _ => None,
                        };
                        match map.get(&k) {
                            Some(&idx) => idx,
                            None => {
                                let idx = group_values.len() as u32;
                                map.insert(k, idx);
                                group_values.push(vec![k.map_or(Value::Null, Value::Int)]);
                                accs.push(fresh(&self.aggs));
                                idx
                            }
                        }
                    }
                    (GroupKeys::Int(map), None) => {
                        // Typed path with no group column only occurs for
                        // `group_by.len() == 1` after migration — but keys
                        // would be Generic then. Treat defensively: the
                        // row's key via the generic construction.
                        let g = self.group_by[0];
                        let k = match t.value(g)? {
                            Value::Int(i) => Some(*i),
                            Value::Null => None,
                            other => {
                                return Err(EvoptError::Internal(format!(
                                    "typed group path saw non-Int key {other:?}"
                                )))
                            }
                        };
                        match map.get(&k) {
                            Some(&idx) => idx,
                            None => {
                                let idx = group_values.len() as u32;
                                map.insert(k, idx);
                                group_values.push(vec![k.map_or(Value::Null, Value::Int)]);
                                accs.push(fresh(&self.aggs));
                                idx
                            }
                        }
                    }
                    (GroupKeys::Generic(map), _) => {
                        let key: Vec<Value> = self
                            .group_by
                            .iter()
                            .map(|&g| t.value(g).cloned())
                            .collect::<Result<_>>()?;
                        match map.get(&key) {
                            Some(&idx) => idx,
                            None => {
                                let idx = group_values.len() as u32;
                                map.insert(key.clone(), idx);
                                group_values.push(key);
                                accs.push(fresh(&self.aggs));
                                idx
                            }
                        }
                    }
                } as usize;
                let group_accs = &mut accs[gidx];
                for (ai, spec) in self.aggs.iter().enumerate() {
                    match (&spec.func, &arg_cols[ai], &spec.arg) {
                        (AggFunc::CountStar, _, _) => group_accs[ai].count_row(),
                        (_, Some(cv), _) => group_accs[ai].update(cv.cell(r))?,
                        (_, None, Some(arg)) => {
                            let v = arg.eval(t)?;
                            group_accs[ai].update(Cell::of(&v))?;
                        }
                        (f, None, None) => {
                            return Err(EvoptError::Execution(format!("{f} requires an argument")))
                        }
                    }
                }
            }
        }

        let mut rows = Vec::with_capacity(group_values.len().max(1));
        if group_values.is_empty() && self.group_by.is_empty() {
            // Ungrouped aggregate over empty input: one default row.
            let values: Vec<Value> = self
                .aggs
                .iter()
                .map(|a| TypedAcc::new(a.func).finish())
                .collect();
            rows.push(Tuple::new(values));
        } else {
            for (key, group_accs) in group_values.into_iter().zip(&accs) {
                let mut values = key;
                values.extend(group_accs.iter().map(TypedAcc::finish));
                rows.push(Tuple::new(values));
            }
        }
        self.results = Some(rows.into_iter());
        Ok(())
    }
}

impl Executor for ColumnarHashAggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.results.is_none() {
            self.compute()?;
        }
        let iter = invariant(self.results.as_mut(), "aggregate results computed")?;
        let rows: Vec<Tuple> = iter.by_ref().take(self.batch_rows).collect();
        Ok(if rows.is_empty() {
            None
        } else {
            Some(Batch::new(self.schema.clone(), rows))
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn join_key_map_picks_typed_representation() {
        let rows = vec![
            t(vec![Value::Int(1)]),
            t(vec![Value::Null]),
            t(vec![Value::Int(1)]),
            t(vec![Value::Int(2)]),
        ];
        let mut map = JoinKeyMap::build(&rows, 0).unwrap();
        assert!(matches!(map, JoinKeyMap::Int(_)));
        assert_eq!(map.lookup(Cell::I(1), &rows, 0).unwrap(), &[0, 2]);
        assert_eq!(map.lookup(Cell::I(2), &rows, 0).unwrap(), &[3]);
        assert!(map.lookup(Cell::I(9), &rows, 0).unwrap().is_empty());
        // NULL probes never match.
        assert!(map.lookup(Cell::Null, &rows, 0).unwrap().is_empty());
        // Cross-class probes never match.
        assert!(map.lookup(Cell::S("1"), &rows, 0).unwrap().is_empty());
    }

    #[test]
    fn join_key_map_float_probe_degrades_exactly() {
        let rows = vec![t(vec![Value::Int(7)]), t(vec![Value::Int(8)])];
        let mut map = JoinKeyMap::build(&rows, 0).unwrap();
        // A Float probe against Int keys must match numerically (SQL:
        // 7 = 7.0), which the degraded Value map provides.
        assert_eq!(map.lookup(Cell::F(7.0), &rows, 0).unwrap(), &[0]);
        assert!(matches!(map, JoinKeyMap::Val(_)));
        assert!(map.lookup(Cell::F(7.5), &rows, 0).unwrap().is_empty());
        assert_eq!(map.lookup(Cell::I(8), &rows, 0).unwrap(), &[1]);
    }

    #[test]
    fn join_key_map_int_probe_against_float_keys() {
        let rows = vec![t(vec![Value::Float(7.0)]), t(vec![Value::Float(-0.0)])];
        let mut map = JoinKeyMap::build(&rows, 0).unwrap();
        assert!(matches!(map, JoinKeyMap::Float(_)));
        assert_eq!(map.lookup(Cell::I(7), &rows, 0).unwrap(), &[0]);
        // Int 0 is +0.0; it must NOT match -0.0 (total_cmp distinguishes),
        // exactly like the row path's Value equality.
        assert!(map.lookup(Cell::I(0), &rows, 0).unwrap().is_empty());
        assert_eq!(map.lookup(Cell::F(-0.0), &rows, 0).unwrap(), &[1]);
    }

    #[test]
    fn join_key_map_mixed_keys_use_value_map() {
        let rows = vec![t(vec![Value::Int(1)]), t(vec![Value::Float(2.5)])];
        let mut map = JoinKeyMap::build(&rows, 0).unwrap();
        assert!(matches!(map, JoinKeyMap::Val(_)));
        assert_eq!(map.lookup(Cell::I(1), &rows, 0).unwrap(), &[0]);
        assert_eq!(map.lookup(Cell::F(1.0), &rows, 0).unwrap(), &[0]);
        assert_eq!(map.lookup(Cell::F(2.5), &rows, 0).unwrap(), &[1]);
    }

    #[test]
    fn typed_sum_mirrors_row_accumulator() {
        let mut acc = TypedAcc::new(AggFunc::Sum);
        acc.update(Cell::I(2)).unwrap();
        acc.update(Cell::Null).unwrap();
        acc.update(Cell::I(3)).unwrap();
        assert_eq!(acc.finish(), Value::Int(5));
        // A float input promotes the running total to Float.
        acc.update(Cell::F(0.5)).unwrap();
        assert_eq!(acc.finish(), Value::Float(5.5));
        acc.update(Cell::I(1)).unwrap();
        assert_eq!(acc.finish(), Value::Float(6.5));
        // Overflow errors instead of wrapping.
        let mut acc = TypedAcc::new(AggFunc::Sum);
        acc.update(Cell::I(i64::MAX)).unwrap();
        assert!(acc.update(Cell::I(1)).is_err());
        // Non-numeric input errors like Value::add.
        let mut acc = TypedAcc::new(AggFunc::Sum);
        assert!(acc.update(Cell::S("x")).is_err());
        // No inputs → NULL.
        assert_eq!(TypedAcc::new(AggFunc::Sum).finish(), Value::Null);
    }

    #[test]
    fn typed_min_max_use_total_order() {
        let mut mn = TypedAcc::new(AggFunc::Min);
        let mut mx = TypedAcc::new(AggFunc::Max);
        for c in [Cell::I(3), Cell::F(2.5), Cell::Null, Cell::I(7)] {
            mn.update(c).unwrap();
            mx.update(c).unwrap();
        }
        assert_eq!(mn.finish(), Value::Float(2.5));
        assert_eq!(mx.finish(), Value::Int(7));
        // Ties keep the first-seen value (like the row path's strict `<`).
        let mut mn = TypedAcc::new(AggFunc::Min);
        mn.update(Cell::I(2)).unwrap();
        mn.update(Cell::F(2.0)).unwrap();
        assert_eq!(mn.finish(), Value::Int(2));
        // Strings via the generic state.
        let mut mx = TypedAcc::new(AggFunc::Max);
        mx.update(Cell::S("a")).unwrap();
        mx.update(Cell::S("c")).unwrap();
        mx.update(Cell::S("b")).unwrap();
        assert_eq!(mx.finish(), Value::Str("c".into()));
    }

    #[test]
    fn typed_count_and_avg() {
        let mut c = TypedAcc::new(AggFunc::Count);
        let mut a = TypedAcc::new(AggFunc::Avg);
        for cell in [Cell::I(1), Cell::Null, Cell::I(3)] {
            c.update(cell).unwrap();
            a.update(cell).unwrap();
        }
        assert_eq!(c.finish(), Value::Int(2));
        assert_eq!(a.finish(), Value::Float(2.0));
        assert_eq!(TypedAcc::new(AggFunc::Avg).finish(), Value::Null);
        assert_eq!(TypedAcc::new(AggFunc::Count).finish(), Value::Int(0));
    }
}
