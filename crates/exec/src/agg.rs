//! Hash aggregation.
//!
//! Groups by the configured columns into an in-memory table of
//! accumulators. SQL semantics: aggregates ignore NULL arguments
//! (`COUNT(*)` counts rows); an ungrouped aggregate over an empty input
//! emits one row (COUNT = 0, others NULL); a grouped one emits nothing.

use std::collections::HashMap;

use evopt_common::{AggFunc, Batch, EvoptError, Result, Schema, Tuple, Value};
use evopt_core::physical::PhysAgg;

use crate::executor::{invariant, BatchBuilder, BatchCursor, Executor};

/// One running aggregate.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    Sum { total: Value, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { total: f64, count: i64 },
}

impl Accumulator {
    fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count | AggFunc::CountStar => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum {
                total: Value::Int(0),
                seen: false,
            },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg {
                total: 0.0,
                count: 0,
            },
        }
    }

    /// Feed one argument value (already `Value::Null` for COUNT(*) rows —
    /// the caller passes a marker; see `update`).
    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Accumulator::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Accumulator::Sum { total, seen } => {
                if !v.is_null() {
                    *total = total.add(v)?;
                    *seen = true;
                }
            }
            Accumulator::Min(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v < c) {
                    *cur = Some(v.clone());
                }
            }
            Accumulator::Max(cur) => {
                if !v.is_null() && cur.as_ref().is_none_or(|c| v > c) {
                    *cur = Some(v.clone());
                }
            }
            Accumulator::Avg { total, count } => {
                if let Some(x) = v.as_f64() {
                    *total += x;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    fn count_row(&mut self) {
        if let Accumulator::Count(n) = self {
            *n += 1;
        }
    }

    fn finish(&self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(*n),
            Accumulator::Sum { total, seen } => {
                if *seen {
                    total.clone()
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
            Accumulator::Avg { total, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*total / *count as f64)
                }
            }
        }
    }
}

/// Hash-based grouped aggregation.
pub struct HashAggregateExec {
    input: Option<BatchCursor>,
    group_by: Vec<usize>,
    aggs: Vec<PhysAgg>,
    schema: Schema,
    batch_rows: usize,
    results: Option<std::vec::IntoIter<Tuple>>,
}

impl HashAggregateExec {
    pub fn new(
        input: Box<dyn Executor>,
        group_by: Vec<usize>,
        aggs: Vec<PhysAgg>,
        schema: Schema,
        batch_rows: usize,
    ) -> Self {
        HashAggregateExec {
            input: Some(BatchCursor::new(input)),
            group_by,
            aggs,
            schema,
            batch_rows: batch_rows.max(1),
            results: None,
        }
    }

    fn compute(&mut self) -> Result<()> {
        let mut input = invariant(self.input.take(), "aggregate computed only once")?;
        // Semantics audit: the group map's derived `Value` equality (total
        // order: `Null == Null`, numerics compare across Int/Float) is the
        // CORRECT choice for GROUP BY — SQL groups all NULL keys into one
        // group. Join keys are the opposite (`Value::sql_key_eq`).
        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        // Keep first-seen order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        while let Some(t) = input.next_row()? {
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|&g| t.value(g).cloned())
                .collect::<Result<_>>()?;
            let accs = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                self.aggs.iter().map(|a| Accumulator::new(a.func)).collect()
            });
            for (acc, spec) in accs.iter_mut().zip(&self.aggs) {
                match (&spec.func, &spec.arg) {
                    (AggFunc::CountStar, _) => acc.count_row(),
                    (_, Some(arg)) => acc.update(&arg.eval(&t)?)?,
                    (f, None) => {
                        return Err(EvoptError::Execution(format!("{f} requires an argument")))
                    }
                }
            }
        }
        let mut rows = Vec::with_capacity(groups.len().max(1));
        if groups.is_empty() && self.group_by.is_empty() {
            // Ungrouped aggregate over empty input: one default row.
            let values: Vec<Value> = self
                .aggs
                .iter()
                .map(|a| Accumulator::new(a.func).finish())
                .collect();
            rows.push(Tuple::new(values));
        } else {
            for key in order {
                let accs = &groups[&key];
                let mut values = key.clone();
                values.extend(accs.iter().map(|a| a.finish()));
                rows.push(Tuple::new(values));
            }
        }
        self.results = Some(rows.into_iter());
        Ok(())
    }
}

impl Executor for HashAggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.results.is_none() {
            self.compute()?;
        }
        let iter = invariant(self.results.as_mut(), "aggregate results computed")?;
        let rows: Vec<Tuple> = iter.by_ref().take(self.batch_rows).collect();
        Ok(if rows.is_empty() {
            None
        } else {
            Some(Batch::new(self.schema.clone(), rows))
        })
    }
}

/// Streaming aggregation over an input sorted by the group columns:
/// accumulate while the key repeats, emit the finished group on change.
/// O(1) state; output arrives in group-key order.
pub struct SortAggregateExec {
    input: BatchCursor,
    group_by: Vec<usize>,
    aggs: Vec<PhysAgg>,
    schema: Schema,
    current_key: Option<Vec<Value>>,
    accs: Vec<Accumulator>,
    done: bool,
    out: BatchBuilder,
}

impl SortAggregateExec {
    pub fn new(
        input: Box<dyn Executor>,
        group_by: Vec<usize>,
        aggs: Vec<PhysAgg>,
        schema: Schema,
        batch_rows: usize,
    ) -> Self {
        SortAggregateExec {
            input: BatchCursor::new(input),
            group_by,
            aggs,
            out: BatchBuilder::new(schema.clone(), batch_rows),
            schema,
            current_key: None,
            accs: Vec::new(),
            done: false,
        }
    }

    fn fresh_accs(&self) -> Vec<Accumulator> {
        self.aggs.iter().map(|a| Accumulator::new(a.func)).collect()
    }

    fn feed(&mut self, t: &Tuple) -> Result<()> {
        for (i, spec) in self.aggs.iter().enumerate() {
            match (&spec.func, &spec.arg) {
                (AggFunc::CountStar, _) => self.accs[i].count_row(),
                (_, Some(arg)) => self.accs[i].update(&arg.eval(t)?)?,
                (f, None) => {
                    return Err(EvoptError::Execution(format!("{f} requires an argument")))
                }
            }
        }
        Ok(())
    }

    fn emit(&mut self) -> Result<Tuple> {
        let key = invariant(self.current_key.take(), "group open at emit")?;
        let mut values = key;
        values.extend(self.accs.iter().map(|a| a.finish()));
        Ok(Tuple::new(values))
    }
}

impl Executor for SortAggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.out.full() || self.done {
                return Ok(self.out.flush());
            }
            match self.input.next_row()? {
                None => {
                    self.done = true;
                    if self.current_key.is_some() {
                        let finished = self.emit()?;
                        self.out.push(finished);
                    } else if self.group_by.is_empty() {
                        // Ungrouped aggregate over empty input: one default
                        // row.
                        let values: Vec<Value> = self
                            .aggs
                            .iter()
                            .map(|a| Accumulator::new(a.func).finish())
                            .collect();
                        self.out.push(Tuple::new(values));
                    }
                }
                Some(t) => {
                    let key: Vec<Value> = self
                        .group_by
                        .iter()
                        .map(|&g| t.value(g).cloned())
                        .collect::<Result<_>>()?;
                    match &self.current_key {
                        // Group-change test uses derived (total-order)
                        // equality, like the hash variant's map: NULL keys
                        // continue the same group, as GROUP BY requires.
                        Some(cur) if *cur == key => {
                            self.feed(&t)?;
                        }
                        Some(_) => {
                            let finished = self.emit()?;
                            self.out.push(finished);
                            self.current_key = Some(key);
                            self.accs = self.fresh_accs();
                            self.feed(&t)?;
                        }
                        None => {
                            self.current_key = Some(key);
                            self.accs = self.fresh_accs();
                            self.feed(&t)?;
                        }
                    }
                }
            }
        }
    }
}
