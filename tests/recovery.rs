//! Crash-point torture suite (experiment W1's robustness side).
//!
//! The write-ahead log's contract: after a crash at **any** point, recovery
//! rebuilds exactly the committed prefix of statements — never a torn
//! record, never a lost commit, never a resurrected aborted statement.
//!
//! The harness makes "any point" literal: [`evopt::CrashingBackend`] kills
//! the disk after a budget of N mutating I/O ops, and the sweep runs the
//! same deterministic workload for **every** N from 0 to the op count of a
//! crash-free run. After each crash the database is reopened over the
//! healed inner disk and its state is compared against a clean twin that
//! applied exactly the statements the crashed run acknowledged.
//!
//! The commit-uncertainty window is the one place two outcomes are legal:
//! a statement whose log records reached the disk but whose final
//! `sync`/acknowledgement did not may surface as committed after recovery
//! even though the caller saw an error. The sweep therefore accepts the
//! state after `k` *or* `k + 1` statements, where `k` is the acknowledged
//! count and statement `k + 1` is the one the crash interrupted — and
//! nothing else.
//!
//! Seeds: `RECOVERY_SEED=<n>` pins one (the CI matrix runs 1, 2, 3);
//! without it all three run in-process.

use std::sync::Arc;

use evopt::{CrashingBackend, Database, DatabaseConfig, DiskBackend, DiskManager, Durability};

fn seeds() -> Vec<u64> {
    match std::env::var("RECOVERY_SEED") {
        Ok(s) => vec![s
            .parse()
            .unwrap_or_else(|_| panic!("RECOVERY_SEED must be an integer, got '{s}'"))],
        Err(_) => vec![1, 2, 3],
    }
}

fn durable_cfg() -> DatabaseConfig {
    DatabaseConfig {
        buffer_pages: 32,
        durability: Durability::Wal,
        ..Default::default()
    }
}

/// One step of the workload script.
#[derive(Debug, Clone)]
enum Op {
    Sql(String),
    Checkpoint,
}

/// Tiny deterministic PRNG so the script varies by seed without pulling in
/// a generator dependency.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A deterministic DML/DDL script: creates, loads, indexes, updates,
/// deletes, and drops — every statement class the WAL logs. With
/// `checkpoints`, checkpoint calls are interleaved so the sweep also
/// crashes *inside* checkpoints.
fn script(seed: u64, checkpoints: bool) -> Vec<Op> {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut ops = Vec::new();
    ops.push(Op::Sql(
        "CREATE TABLE t (id INT NOT NULL, grp INT, val INT)".into(),
    ));
    let mut next_id = 0i64;
    let mut insert_batch = |ops: &mut Vec<Op>, rng: &mut u64, n: i64| {
        let rows: Vec<String> = (0..n)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                format!("({id}, {}, {})", id % 5, lcg(rng) % 1000)
            })
            .collect();
        ops.push(Op::Sql(format!("INSERT INTO t VALUES {}", rows.join(", "))));
    };
    insert_batch(&mut ops, &mut rng, 15);
    insert_batch(&mut ops, &mut rng, 15);
    ops.push(Op::Sql("CREATE INDEX t_id ON t (id)".into()));
    insert_batch(&mut ops, &mut rng, 15);
    ops.push(Op::Sql(format!(
        "UPDATE t SET val = val + {} WHERE grp = {}",
        lcg(&mut rng) % 100,
        lcg(&mut rng) % 5
    )));
    ops.push(Op::Sql(format!(
        "DELETE FROM t WHERE grp = {}",
        lcg(&mut rng) % 5
    )));
    ops.push(Op::Sql("CREATE TABLE scratch (x INT)".into()));
    ops.push(Op::Sql("INSERT INTO scratch VALUES (1), (2), (3)".into()));
    ops.push(Op::Sql("DROP TABLE scratch".into()));
    insert_batch(&mut ops, &mut rng, 15);
    ops.push(Op::Sql(format!(
        "UPDATE t SET val = 0 WHERE id < {}",
        5 + lcg(&mut rng) % 10
    )));
    ops.push(Op::Sql(format!(
        "DELETE FROM t WHERE id = {}",
        lcg(&mut rng) % 60
    )));
    if checkpoints {
        // Interleave, rather than append, so post-checkpoint commits and
        // crashes *during* the checkpoint itself are both swept.
        let mut with_cp = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            with_cp.push(op);
            if i % 4 == 3 {
                with_cp.push(Op::Checkpoint);
            }
        }
        ops = with_cp;
    }
    ops
}

fn apply(db: &Database, op: &Op) -> evopt::common::Result<()> {
    match op {
        Op::Sql(sql) => db.execute(sql).map(|_| ()),
        Op::Checkpoint => db.checkpoint(),
    }
}

/// Queries whose combined answers pin the logical state. A missing table
/// collapses to a typed marker so pre-CREATE prefixes digest cleanly.
const DIGEST_QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM t",
    "SELECT id, grp, val FROM t ORDER BY id",
    "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY grp",
    "SELECT val FROM t WHERE id = 17",
    "SELECT COUNT(*) FROM scratch",
];

fn digest(db: &Database) -> Vec<String> {
    DIGEST_QUERIES
        .iter()
        .map(|q| match db.query(q) {
            Ok(rows) => format!("{rows:?}"),
            Err(e) => format!("ERR:{}", e.kind()),
        })
        .collect()
}

/// Ground truth: the digest after each prefix of the script, computed on a
/// plain non-durable database (no WAL in the way). `digests[k]` is the
/// state after the first `k` statements.
fn twin_digests(ops: &[Op]) -> Vec<Vec<String>> {
    let twin = Database::new(DatabaseConfig {
        buffer_pages: 32,
        ..Default::default()
    });
    let mut digests = vec![digest(&twin)];
    for op in ops {
        match op {
            Op::Sql(sql) => {
                twin.execute(sql).unwrap_or_else(|e| {
                    panic!("twin must apply the whole script cleanly: {sql}: {e}")
                });
            }
            Op::Checkpoint => {} // logical no-op
        }
        digests.push(digest(&twin));
    }
    digests
}

/// Run the script on a durable database over `backend` until the first
/// error; returns how many statements were acknowledged.
fn run_until_crash(db: &Database, ops: &[Op]) -> usize {
    for (i, op) in ops.iter().enumerate() {
        if apply(db, op).is_err() {
            return i;
        }
    }
    ops.len()
}

/// Mutating-op count of a crash-free run (sizes the sweep), plus a sanity
/// check that the script really is crash-free on a healthy disk.
fn crash_free_mutations(ops: &[Op]) -> u64 {
    let inner: Arc<dyn DiskBackend> = Arc::new(DiskManager::new());
    let counter = Arc::new(CrashingBackend::unlimited(inner));
    let db = Database::create_on(Arc::clone(&counter) as Arc<dyn DiskBackend>, durable_cfg())
        .expect("bootstrap on a healthy disk");
    for op in ops {
        apply(&db, op).expect("script must run clean without a crash budget");
    }
    counter.mutation_ops()
}

/// Build a database over a crash-after-N backend, run the script into the
/// crash, and return the healed inner disk plus the acknowledged count.
/// `None` when the budget killed bootstrap itself (no database existed).
fn crashed_disk(ops: &[Op], budget: u64) -> Option<(Arc<DiskManager>, usize)> {
    let inner = Arc::new(DiskManager::new());
    let crashing = Arc::new(CrashingBackend::new(
        Arc::clone(&inner) as Arc<dyn DiskBackend>,
        budget,
    ));
    let db =
        Database::create_on(Arc::clone(&crashing) as Arc<dyn DiskBackend>, durable_cfg()).ok()?;
    let acked = run_until_crash(&db, ops);
    if acked < ops.len() {
        assert!(
            crashing.has_crashed(),
            "budget {budget}: statement {acked} failed before the crash fired"
        );
    }
    drop(db);
    Some((inner, acked))
}

/// Recover over a healed disk and check the state is the committed prefix:
/// the digest after `acked` statements, or — only when the crash cut a
/// statement mid-flight — after `acked + 1` (commit-uncertainty window).
fn assert_recovers_to_prefix(
    disk: Arc<DiskManager>,
    acked: usize,
    twins: &[Vec<String>],
    context: &str,
) {
    let (db, info) = Database::recover(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
        .unwrap_or_else(|e| panic!("{context}: recovery over a healed disk failed: {e}"));
    let got = digest(&db);
    let exact = &twins[acked];
    let uncertain = twins.get(acked + 1);
    assert!(
        got == *exact || Some(&got) == uncertain,
        "{context}: recovered state matches neither the {acked}-statement prefix nor \
         the uncertainty window\n  got:      {got:?}\n  expected: {exact:?}\n  or:       {uncertain:?}\n  info: {info:?}"
    );
    drop(db);
    // Recovery is idempotent: recovering the same disk again lands on the
    // same state and replays nothing (page LSNs are already current).
    let (db2, info2) = Database::recover(disk as Arc<dyn DiskBackend>, durable_cfg())
        .unwrap_or_else(|e| panic!("{context}: second recovery failed: {e}"));
    assert_eq!(
        info2.replayed_records, 0,
        "{context}: second recovery replayed pages the first already wrote"
    );
    assert_eq!(
        digest(&db2),
        got,
        "{context}: second recovery changed the state"
    );
}

/// The headline sweep: crash after every possible mutating-op count,
/// recover, and demand exactly the committed prefix every time.
fn torture(seed: u64, checkpoints: bool) {
    let ops = script(seed, checkpoints);
    let twins = twin_digests(&ops);
    let m = crash_free_mutations(&ops);
    // The floor was 50 when read paths still dirtied every page they
    // touched (forcing eviction write-backs the sweep counted as mutating
    // ops). With reads fixed to leave the dirty bit alone, the same script
    // performs fewer physical writes — the sweep is just as exhaustive.
    assert!(m > 40, "workload too small to be interesting: {m} ops");
    let mut bootstrap_crashes = 0u64;
    for budget in 0..=m {
        let label = format!("seed {seed} cp={checkpoints} budget {budget}/{m}");
        match crashed_disk(&ops, budget) {
            Some((disk, acked)) => {
                assert_recovers_to_prefix(disk, acked, &twins, &label);
            }
            None => {
                // The crash killed bootstrap: no WAL master ever became
                // valid, so there is nothing to recover — but the failure
                // must be typed, never a panic or a silently empty DB.
                bootstrap_crashes += 1;
            }
        }
    }
    assert!(
        bootstrap_crashes < m,
        "seed {seed}: every budget died in bootstrap — the sweep never reached the workload"
    );
}

#[test]
fn crash_point_torture_sweep() {
    for seed in seeds() {
        torture(seed, false);
    }
}

#[test]
fn crash_point_torture_sweep_with_checkpoints() {
    for seed in seeds() {
        torture(seed, true);
    }
}

/// Double-crash: the crash-recovery run is itself killed at every point,
/// then a clean recovery follows. The final state must equal what a single
/// clean recovery of the original crash would have produced — a crashed
/// recovery must not destroy committed data or commit discarded data.
#[test]
fn crash_during_recovery_then_recover_again() {
    for seed in seeds() {
        let ops = script(seed, true);
        let m = crash_free_mutations(&ops);
        // Three representative workload crash points (sweeping both axes
        // exhaustively would square the runtime for no extra coverage —
        // the recovery axis below is exhaustive).
        for frac in [m / 4, m / 2, 3 * m / 4] {
            let Some((disk, acked)) = crashed_disk(&ops, frac) else {
                continue;
            };
            // Reference: what a clean recovery of this crash produces.
            let (ref_db, _) =
                Database::recover(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
                    .expect("clean reference recovery");
            let want = digest(&ref_db);
            drop(ref_db);

            // Recovery mutation budget, measured on an identical replica
            // (the workload is deterministic, so rebuilding the crashed
            // disk reproduces it bit-for-bit).
            let (replica, acked2) = crashed_disk(&ops, frac).expect("replica build");
            assert_eq!(acked, acked2, "workload is not deterministic");
            let counter = Arc::new(CrashingBackend::unlimited(
                Arc::clone(&replica) as Arc<dyn DiskBackend>
            ));
            Database::recover(Arc::clone(&counter) as Arc<dyn DiskBackend>, durable_cfg())
                .expect("counting recovery");
            let m2 = counter.mutation_ops();

            for n2 in 0..=m2 {
                let label = format!("seed {seed} frac {frac} recovery-budget {n2}/{m2}");
                let (disk, _) = crashed_disk(&ops, frac).expect("replica build");
                let crashing = Arc::new(CrashingBackend::new(
                    Arc::clone(&disk) as Arc<dyn DiskBackend>,
                    n2,
                ));
                // First recovery may die mid-flight — that's the point.
                let first =
                    Database::recover(Arc::clone(&crashing) as Arc<dyn DiskBackend>, durable_cfg());
                if n2 >= m2 {
                    assert!(first.is_ok(), "{label}: full budget must recover");
                }
                drop(first);
                // Clean recovery afterwards must land on the reference
                // state: the crashed recovery changed nothing observable.
                let (db, _) =
                    Database::recover(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
                        .unwrap_or_else(|e| panic!("{label}: clean recovery failed: {e}"));
                assert_eq!(digest(&db), want, "{label}: state diverged");
            }
        }
    }
}

/// A torn tail written by a real crash (not a hand-scribbled frame): kill
/// the backend mid-commit so the log ends in a half-written record, then
/// verify recovery truncates it and a *new* workload continues cleanly on
/// the recovered database.
#[test]
fn recovered_database_keeps_working() {
    for seed in seeds() {
        let ops = script(seed, false);
        let m = crash_free_mutations(&ops);
        let Some((disk, _)) = crashed_disk(&ops, m * 2 / 3) else {
            continue;
        };
        let (db, info) =
            Database::recover(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
                .expect("recovery");
        // The crash usually lands mid-record; whichever way it fell, the
        // log must scan clean now and accept new durable work.
        db.execute("CREATE TABLE post (x INT)").unwrap();
        db.execute("INSERT INTO post VALUES (1), (2)").unwrap();
        db.checkpoint().expect("checkpoint on recovered database");
        db.execute("INSERT INTO post VALUES (3)").unwrap();
        let want = digest(&db);
        drop(db);
        let (db2, info2) =
            Database::recover(Arc::clone(&disk) as Arc<dyn DiskBackend>, durable_cfg())
                .expect("second-generation recovery");
        assert!(!info2.torn_tail, "first recovery left a torn tail behind");
        assert_eq!(digest(&db2), want, "seed {seed}: post-recovery work lost");
        let n = db2.query("SELECT COUNT(*) FROM post").unwrap();
        assert_eq!(format!("{n:?}"), "[Tuple { values: [Int(3)] }]");
        // Informational: the original crash produced either a torn tail or
        // a clean-but-uncommitted one; both are legal. Just touch the field
        // so the report shape is exercised.
        let _ = info.torn_tail;
    }
}
