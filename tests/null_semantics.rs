//! NULL-semantics suite: the places where SQL's three-valued logic and its
//! deliberate exceptions meet the executor.
//!
//! The rules under test:
//!
//! * **Join keys never match on NULL** — including `NULL = NULL` — in every
//!   join family, row mode and columnar mode alike.
//! * **GROUP BY groups NULL keys into one group** (total-order equality is
//!   the *correct* choice there), and DISTINCT — lowered to GROUP BY-all —
//!   collapses NULL duplicates.
//! * **ORDER BY gives NULLs a defined position** (first, per the total
//!   order) instead of refusing to compare, and LIMIT over such a sort is
//!   stable across batch sizes.
//! * **Predicates reject NULL** (`WHERE x = x` drops NULL rows), while
//!   `IS NULL` / `IS NOT NULL` observe nullness directly.
//!
//! Every check runs in row mode and columnar mode at batch sizes 1, 64 and
//! 1024 and asserts identical results — the columnar kernels must
//! reproduce the row operators' NULL behaviour exactly.

use std::sync::Arc;

use evopt::{Database, Tuple};
use evopt_catalog::{analyze_table, AnalyzeConfig, Catalog};
use evopt_common::expr::col;
use evopt_common::{Column, DataType, Expr, Schema, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{PhysOp, PhysicalPlan};
use evopt_exec::{run_collect, ExecEnv};
use evopt_storage::{BufferPool, DiskManager, PolicyKind};

const BATCH_SIZES: [usize; 3] = [1, 64, 1024];

fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    keys.sort();
    keys
}

/// Run `sql` in row mode and columnar mode at each batch size; assert all
/// six runs agree and return one representative result.
fn query_all_modes(db: &Database, sql: &str) -> Vec<Tuple> {
    let mut reference: Option<(Vec<Tuple>, Vec<String>)> = None;
    for bs in BATCH_SIZES {
        db.set_batch_rows(bs);
        for columnar in [false, true] {
            db.set_columnar(columnar);
            let got = db.query(sql).unwrap();
            let norm = normalized(&got);
            match &reference {
                None => reference = Some((got, norm)),
                Some((_, want)) => assert_eq!(
                    &norm, want,
                    "{sql} differs at batch_rows={bs} columnar={columnar}"
                ),
            }
        }
    }
    db.set_columnar(true);
    reference.unwrap().0
}

// ---------------------------------------------------------------------------
// SQL level
// ---------------------------------------------------------------------------

/// `t(k INT, v INT, s STRING)`: k is NULL on every 3rd row, v on every 4th,
/// s on every 5th.
fn null_fixture() -> Database {
    let db = Database::with_defaults();
    db.execute("CREATE TABLE t (k INT, v INT, s STRING)")
        .unwrap();
    for i in 0..200 {
        let k = if i % 3 == 0 {
            "NULL".to_string()
        } else {
            (i % 7).to_string()
        };
        let v = if i % 4 == 0 {
            "NULL".to_string()
        } else {
            i.to_string()
        };
        let s = if i % 5 == 0 {
            "NULL".to_string()
        } else {
            format!("'s{}'", i % 11)
        };
        db.execute(&format!("INSERT INTO t VALUES ({k}, {v}, {s})"))
            .unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db
}

#[test]
fn null_group_keys_form_one_group() {
    let db = null_fixture();
    let rows = query_all_modes(&db, "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k");
    // Groups: k in 0..7 plus exactly ONE group for all 67 NULL keys.
    assert_eq!(rows.len(), 8);
    let null_groups: Vec<&Tuple> = rows
        .iter()
        .filter(|t| t.value(0).unwrap().is_null())
        .collect();
    assert_eq!(null_groups.len(), 1, "all NULL keys must share one group");
    assert_eq!(*null_groups[0].value(1).unwrap(), Value::Int(67));
}

#[test]
fn distinct_collapses_null_duplicates() {
    let db = null_fixture();
    let rows = query_all_modes(&db, "SELECT DISTINCT s FROM t");
    // s in s0..s10 plus exactly one NULL row.
    assert_eq!(rows.len(), 12);
    let nulls = rows
        .iter()
        .filter(|t| t.value(0).unwrap().is_null())
        .count();
    assert_eq!(nulls, 1, "DISTINCT must collapse NULLs to one row");
}

#[test]
fn aggregates_ignore_null_arguments() {
    let db = null_fixture();
    let rows = query_all_modes(
        &db,
        "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v) FROM t",
    );
    assert_eq!(rows.len(), 1);
    let t = &rows[0];
    assert_eq!(*t.value(0).unwrap(), Value::Int(200));
    // 50 of 200 rows have NULL v; COUNT(v) skips them.
    assert_eq!(*t.value(1).unwrap(), Value::Int(150));
    // SUM over non-null v = sum of 0..200 minus multiples of 4.
    let expect: i64 = (0..200).filter(|i| i % 4 != 0).sum();
    assert_eq!(*t.value(2).unwrap(), Value::Int(expect));
    // MIN skips NULLs: smallest non-null v is 1.
    assert_eq!(*t.value(4).unwrap(), Value::Int(1));
}

#[test]
fn null_rejecting_predicates_and_is_null() {
    let db = null_fixture();
    // NULL = NULL is UNKNOWN, so `k = k` drops every NULL-k row.
    let eq_self = query_all_modes(&db, "SELECT * FROM t WHERE k = k");
    assert_eq!(eq_self.len(), 133);
    let is_null = query_all_modes(&db, "SELECT * FROM t WHERE k IS NULL");
    assert_eq!(is_null.len(), 67);
    let not_null = query_all_modes(&db, "SELECT * FROM t WHERE k IS NOT NULL");
    assert_eq!(not_null.len(), 133);
    // Kleene AND/OR with a NULL operand; only definite-true rows survive.
    let and_or = query_all_modes(
        &db,
        "SELECT * FROM t WHERE k = 1 OR (v > 100 AND k IS NULL)",
    );
    for t in &and_or {
        let k = t.value(0).unwrap();
        let v = t.value(1).unwrap();
        assert!(
            *k == Value::Int(1) || (k.is_null() && *v > Value::Int(100)),
            "unexpected row {t:?}"
        );
    }
    // NOT over UNKNOWN stays UNKNOWN: both the predicate and its negation
    // drop NULL-k rows, so the two row counts sum to the non-null count.
    let lt = query_all_modes(&db, "SELECT * FROM t WHERE k < 3");
    let ge = query_all_modes(&db, "SELECT * FROM t WHERE NOT (k < 3)");
    assert_eq!(lt.len() + ge.len(), 133);
}

#[test]
fn null_order_by_and_limit_are_stable() {
    let db = null_fixture();
    // Total order puts NULLs first; LIMIT must cut the same prefix in both
    // modes at every batch size.
    let rows = query_all_modes(&db, "SELECT k, v FROM t ORDER BY k, v LIMIT 80");
    assert_eq!(rows.len(), 80);
    // The 67 NULL-k rows sort before every non-null key.
    for (i, t) in rows.iter().enumerate() {
        if i < 67 {
            assert!(t.value(0).unwrap().is_null(), "row {i} should be NULL-k");
        } else {
            assert!(!t.value(0).unwrap().is_null(), "row {i} should be non-NULL");
        }
    }
}

#[test]
fn null_join_keys_never_match_sql_level() {
    let db = null_fixture();
    db.execute("CREATE TABLE u (k INT, w INT)").unwrap();
    for i in 0..60 {
        let k = if i % 2 == 0 {
            "NULL".to_string()
        } else {
            (i % 7).to_string()
        };
        db.execute(&format!("INSERT INTO u VALUES ({k}, {i})"))
            .unwrap();
    }
    db.execute("ANALYZE").unwrap();
    let rows = query_all_modes(&db, "SELECT t.v, u.w FROM t, u WHERE t.k = u.k");
    // Every surviving pair joined through a non-null key by construction;
    // count it directly: per key 0..6, (#t rows with that k) * (#u rows).
    let t_counts: Vec<usize> = (0..7)
        .map(|k| (0..200).filter(|i| i % 3 != 0 && i % 7 == k).count())
        .collect();
    let u_counts: Vec<usize> = (0..7)
        .map(|k| (0..60).filter(|i| i % 2 != 0 && i % 7 == k as i64).count())
        .collect();
    let expect: usize = t_counts.iter().zip(&u_counts).map(|(a, b)| a * b).sum();
    assert_eq!(rows.len(), expect, "NULL keys must never join");
}

// ---------------------------------------------------------------------------
// Plan level: the NULL = NULL regression in EVERY join family
// ---------------------------------------------------------------------------

/// `l(a INT, tag STRING)` / `r(b INT, payload INT)` with `b` indexed. Key
/// columns are produced by the closures (NULLs allowed); rows are inserted
/// before the index is built so the index stays consistent.
fn world(
    pool_pages: usize,
    left_key: impl Fn(i64) -> Value,
    n_left: i64,
    right_key: impl Fn(i64) -> Value,
    n_right: i64,
) -> ExecEnv {
    let pool = BufferPool::new(Arc::new(DiskManager::new()), pool_pages, PolicyKind::Lru);
    let cat = Arc::new(Catalog::new(pool));
    let l = cat
        .create_table(
            "l",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("tag", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..n_left {
        l.heap
            .insert(&Tuple::new(vec![left_key(i), Value::Str(format!("L{i}"))]))
            .unwrap();
    }
    let r = cat
        .create_table(
            "r",
            Schema::new(vec![
                Column::new("b", DataType::Int),
                Column::new("payload", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..n_right {
        r.heap
            .insert(&Tuple::new(vec![right_key(i), Value::Int(i * 100)]))
            .unwrap();
    }
    cat.create_index("r_b", "r", "b", false, false).unwrap();
    // create_index clone-and-swaps r's TableInfo (CoW catalog): re-fetch
    // so the stats land on the registered entry, not a stale snapshot.
    let r = cat.table("r").unwrap();
    analyze_table(&l, &AnalyzeConfig::default()).unwrap();
    analyze_table(&r, &AnalyzeConfig::default()).unwrap();
    ExecEnv::new(cat, pool_pages)
}

/// Two tables whose join keys are **all NULL** (plus payloads). Any join
/// family that treats `NULL = NULL` as a match produces rows here.
fn all_null_world(pool_pages: usize) -> ExecEnv {
    world(pool_pages, |_| Value::Null, 50, |_| Value::Null, 50)
}

fn plan(op: PhysOp, schema: Schema) -> PhysicalPlan {
    PhysicalPlan {
        op,
        schema,
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
    }
}

fn scan(env: &ExecEnv, t: &str) -> PhysicalPlan {
    let schema = env.catalog.table(t).unwrap().schema.clone();
    plan(
        PhysOp::SeqScan {
            table: t.into(),
            filter: None,
        },
        schema,
    )
}

fn sorted_scan(env: &ExecEnv, t: &str) -> PhysicalPlan {
    let s = scan(env, t);
    let schema = s.schema.clone();
    plan(
        PhysOp::Sort {
            input: Box::new(s),
            keys: vec![(0, true)],
        },
        schema,
    )
}

fn join_plans(env: &ExecEnv) -> Vec<(&'static str, PhysicalPlan)> {
    let schema = scan(env, "l").schema.join(&scan(env, "r").schema);
    let pred = Some(Expr::eq(col(0), col(2)));
    vec![
        (
            "NestedLoopJoin",
            plan(
                PhysOp::NestedLoopJoin {
                    left: Box::new(scan(env, "l")),
                    right: Box::new(scan(env, "r")),
                    predicate: pred.clone(),
                },
                schema.clone(),
            ),
        ),
        (
            "BlockNestedLoopJoin",
            plan(
                PhysOp::BlockNestedLoopJoin {
                    left: Box::new(scan(env, "l")),
                    right: Box::new(scan(env, "r")),
                    predicate: pred,
                    block_pages: 4,
                },
                schema.clone(),
            ),
        ),
        (
            "IndexNestedLoopJoin",
            plan(
                PhysOp::IndexNestedLoopJoin {
                    outer: Box::new(scan(env, "l")),
                    inner_table: "r".into(),
                    index: "r_b".into(),
                    outer_key: 0,
                    residual: None,
                },
                schema.clone(),
            ),
        ),
        (
            "SortMergeJoin",
            plan(
                PhysOp::SortMergeJoin {
                    left: Box::new(sorted_scan(env, "l")),
                    right: Box::new(sorted_scan(env, "r")),
                    left_key: 0,
                    right_key: 0,
                    residual: None,
                },
                schema.clone(),
            ),
        ),
        (
            "HashJoin",
            plan(
                PhysOp::HashJoin {
                    left: Box::new(scan(env, "l")),
                    right: Box::new(scan(env, "r")),
                    left_key: 0,
                    right_key: 0,
                    residual: None,
                },
                schema,
            ),
        ),
    ]
}

#[test]
fn null_eq_null_joins_nothing_in_every_family() {
    // THE regression test: a NULL = NULL join key produces zero matches in
    // every join family, in row mode and columnar mode, at every batch
    // size. An equality routed through derived `Eq` (Null == Null) would
    // emit 50 × 50 rows here.
    let env = all_null_world(16);
    for (name, p) in join_plans(&env) {
        for bs in BATCH_SIZES {
            for columnar in [false, true] {
                let got = run_collect(&p, &env.clone().with_batch_rows(bs).with_columnar(columnar))
                    .unwrap();
                assert!(
                    got.is_empty(),
                    "{name} matched NULL keys (batch_rows={bs}, columnar={columnar}): \
                     {} rows",
                    got.len()
                );
            }
        }
    }
}

#[test]
fn null_eq_null_joins_nothing_under_grace_spill() {
    // Same regression through the hash join's Grace (spilling) path: a
    // 3-page budget with a build side too large to hold in memory.
    let pool_pages = 3;
    let env = all_null_world(pool_pages);
    // Inflate the build side so it spills.
    let r = env.catalog.table("r").unwrap();
    for i in 0..4000 {
        r.heap
            .insert(&Tuple::new(vec![Value::Null, Value::Int(i)]))
            .unwrap();
    }
    let p = join_plans(&env).pop().unwrap().1;
    for columnar in [false, true] {
        let got =
            run_collect(&p, &env.clone().with_batch_rows(64).with_columnar(columnar)).unwrap();
        assert!(
            got.is_empty(),
            "Grace hash join matched NULL keys (columnar={columnar})"
        );
    }
}

#[test]
fn mixed_null_join_identical_row_vs_columnar() {
    // NULL keys interleaved with colliding real keys on both sides: the
    // non-null subset must join the same in every family, row vs columnar,
    // at every batch size.
    let env = world(
        16,
        |i| {
            if i % 4 == 0 {
                Value::Null
            } else {
                Value::Int(i % 9)
            }
        },
        170,
        |i| {
            if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(i % 13)
            }
        },
        170,
    );
    for (name, p) in join_plans(&env) {
        let want = run_collect(&p, &env.clone().with_batch_rows(1).with_columnar(false)).unwrap();
        assert!(!want.is_empty(), "{name}: fixture should produce matches");
        for bs in BATCH_SIZES {
            for columnar in [false, true] {
                let got = run_collect(&p, &env.clone().with_batch_rows(bs).with_columnar(columnar))
                    .unwrap();
                assert_eq!(
                    normalized(&got),
                    normalized(&want),
                    "{name} differs (batch_rows={bs}, columnar={columnar})"
                );
            }
        }
    }
}
