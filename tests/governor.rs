//! Resource-governor integration tests: every kill path (timeout, row
//! budget, page budget, explicit cancel) lands as a typed error *with the
//! partial metrics the query accumulated before dying*, and the session
//! governor threads through the plain `Database::execute` path.

use std::time::{Duration, Instant};

use evopt::{CancellationToken, Database, DatabaseConfig, GovernorConfig};
use evopt_workload::load_wisconsin;

/// A database sized so that real queries do real pool traffic.
fn wisc_db(rows: usize) -> Database {
    let db = Database::new(DatabaseConfig {
        buffer_pages: 32,
        ..Default::default()
    });
    load_wisconsin(&db, "wisc", rows, 7).unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// An expensive-by-construction query: an unindexed self-join forces a
/// nested-loop over rows² comparisons.
const EXPENSIVE: &str = "SELECT COUNT(*) FROM wisc a JOIN wisc b ON a.ten_pct = b.twenty_pct";

#[test]
fn timeout_kills_mid_flight_with_partial_metrics() {
    let db = wisc_db(3000);
    let config = GovernorConfig::unlimited().with_timeout(Duration::from_millis(5));
    let started = Instant::now();
    let (result, metrics) = db.query_governed(EXPENSIVE, config, CancellationToken::new());
    let wall = started.elapsed();

    let err = result.expect_err("5ms is not enough for a 3000x3000 nested loop");
    assert_eq!(err.kind(), "resource_exhausted");
    assert!(
        err.to_string().contains("timeout"),
        "kill reason should name the timeout: {err}"
    );
    // The governor checks before every operator next(), so the kill lands
    // promptly — allow generous slack for load, but nowhere near the
    // seconds the full join would take.
    assert!(
        wall < Duration::from_secs(10),
        "timeout kill took {wall:?}; governor is not checking per next()"
    );

    // Killed queries still report what they did.
    let metrics = metrics.expect("kill happens during execution, metrics exist");
    let root = metrics.root();
    assert!(
        root.next_calls > 0,
        "the root operator was pulled at least once before the kill"
    );
    assert!(
        metrics.pool_hits + metrics.pool_misses > 0,
        "a join over 3000 rows touches the pool before 5ms elapse"
    );
}

#[test]
fn row_budget_trips_exactly_past_the_limit() {
    let db = wisc_db(500);
    let config = GovernorConfig::unlimited()
        .with_max_rows(10)
        .with_max_batch_rows(8);
    let (result, metrics) = db.query_governed(
        "SELECT unique1 FROM wisc ORDER BY unique1",
        config,
        CancellationToken::new(),
    );

    let err = result.expect_err("500 rows > 10-row budget");
    assert_eq!(err.kind(), "resource_exhausted");
    assert!(
        err.to_string().contains("row budget"),
        "kill reason should name the row budget: {err}"
    );
    // The budget is charged per batch at the root drain, so the overshoot
    // past the limit is bounded by the governed batch-size cap.
    let metrics = metrics.expect("metrics survive a row-budget kill");
    assert!(
        metrics.root().actual_rows <= 10 + 8,
        "root emitted {} rows after a 10-row budget kill with 8-row batches",
        metrics.root().actual_rows
    );
}

#[test]
fn max_batch_rows_bounds_row_budget_overshoot() {
    // Sweep the batch cap: the kill must always land within one batch of
    // the row limit, and cap = 1 reproduces the old tuple-exact behaviour.
    let db = wisc_db(500);
    for cap in [1usize, 4, 64] {
        let config = GovernorConfig::unlimited()
            .with_max_rows(10)
            .with_max_batch_rows(cap);
        let (result, metrics) = db.query_governed(
            "SELECT unique1 FROM wisc ORDER BY unique1",
            config,
            CancellationToken::new(),
        );
        assert_eq!(result.unwrap_err().kind(), "resource_exhausted");
        let metrics = metrics.expect("metrics survive a row-budget kill");
        assert!(
            metrics.root().actual_rows <= 10 + cap as u64,
            "cap {cap}: root emitted {} rows past a 10-row budget",
            metrics.root().actual_rows
        );
        // Partial metrics are real: the root was actually pulled.
        assert!(metrics.root().next_calls > 0, "cap {cap}");
    }
}

#[test]
fn cancel_from_another_thread_kills_mid_drain() {
    let db = wisc_db(3000);
    let token = CancellationToken::new();
    let canceler = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        })
    };
    let (result, metrics) = db.query_governed(EXPENSIVE, GovernorConfig::unlimited(), token);
    canceler.join().unwrap();

    let err = result.expect_err("canceled long before the self-join finishes");
    assert_eq!(err.kind(), "canceled");
    // The killed query still reports the partial work it did: the governor
    // is checked once per batch, so the cancel landed within one batch of
    // some operator's progress.
    let metrics = metrics.expect("metrics survive a cancellation");
    assert!(
        metrics.root().next_calls > 0 || metrics.pool_hits + metrics.pool_misses > 0,
        "partial metrics should show work before the cancel"
    );
}

#[test]
fn page_budget_trips_on_pool_traffic() {
    let db = wisc_db(3000);
    // Make every page a physical fetch again.
    db.pool().evict_all().unwrap();
    let config = GovernorConfig::unlimited().with_max_pages(4);
    let (result, metrics) = db.query_governed(
        "SELECT COUNT(*) FROM wisc",
        config,
        CancellationToken::new(),
    );

    let err = result.expect_err("a 3000-row scan needs more than 4 pages");
    assert_eq!(err.kind(), "resource_exhausted");
    assert!(
        err.to_string().contains("page budget"),
        "kill reason should name the page budget: {err}"
    );
    let metrics = metrics.expect("metrics survive a page-budget kill");
    assert!(
        metrics.pool_hits + metrics.pool_misses > 4,
        "the kill fired because pool traffic exceeded the budget"
    );
}

#[test]
fn pre_canceled_token_kills_before_first_row() {
    let db = wisc_db(200);
    let token = CancellationToken::new();
    token.cancel();
    let (result, metrics) = db.query_governed(
        "SELECT COUNT(*) FROM wisc",
        GovernorConfig::unlimited(),
        token,
    );

    let err = result.expect_err("canceled before the first next()");
    assert_eq!(err.kind(), "canceled");
    // Cancellation is observed before the root produces anything.
    let metrics = metrics.expect("metrics exist even for an instant kill");
    assert_eq!(metrics.root().actual_rows, 0);
}

#[test]
fn unlimited_governor_changes_nothing() {
    let db = wisc_db(300);
    let sql = "SELECT one_pct, COUNT(*) AS n FROM wisc GROUP BY one_pct ORDER BY one_pct";
    let want = db.query(sql).unwrap();
    let (result, metrics) =
        db.query_governed(sql, GovernorConfig::unlimited(), CancellationToken::new());
    assert_eq!(result.unwrap(), want);
    let metrics = metrics.unwrap();
    assert_eq!(metrics.root().actual_rows, want_len(&want));
}

fn want_len(rows: &[evopt::Tuple]) -> u64 {
    rows.len() as u64
}

#[test]
fn session_governor_threads_through_execute() {
    let db = wisc_db(500);

    // Within budget: execute succeeds and attaches metrics (the governed
    // path is instrumented).
    db.set_governor(GovernorConfig::unlimited().with_max_rows(1000));
    let result = db
        .execute("SELECT unique1 FROM wisc WHERE unique1 < 20")
        .unwrap();
    assert!(
        result.metrics().is_some(),
        "governed SELECTs report metrics on success"
    );
    assert_eq!(result.rows().len(), 20);

    // Over budget: the same plain execute path now fails typed.
    db.set_governor(GovernorConfig::unlimited().with_max_rows(5));
    let err = db
        .execute("SELECT unique1 FROM wisc ORDER BY unique1")
        .expect_err("500 rows > 5-row session budget");
    assert_eq!(err.kind(), "resource_exhausted");

    // Lifting the governor restores the ungoverned path.
    db.set_governor(GovernorConfig::unlimited());
    let rows = db.query("SELECT COUNT(*) FROM wisc").unwrap();
    assert_eq!(rows.len(), 1);
}
