//! Cross-crate optimizer property tests: invariants that must hold for any
//! query the engine accepts, checked on randomized workloads.

use evopt::workload::{JoinWorkload, Topology};
use evopt::{Database, Strategy};

/// DP strategies explore a superset of every heuristic's plan space, so
/// their estimated cost can never be worse.
#[test]
fn dp_dominates_heuristics_on_random_topologies() {
    for (topo, n, seed) in [
        (Topology::Chain, 4, 1u64),
        (Topology::Chain, 6, 2),
        (Topology::Star, 5, 3),
        (Topology::Cycle, 5, 4),
        (Topology::Clique, 4, 5),
    ] {
        let db = Database::with_defaults();
        let w = JoinWorkload::new(topo, n, 50, seed);
        w.load(&db, true).unwrap();
        let sql = w.filtered_query(200);
        let model = db.optimizer_config().cost_model;
        let cost_of = |s: Strategy| {
            db.set_strategy(s);
            let (_, p) = db.plan_sql(&sql).unwrap();
            model.total(p.est_cost)
        };
        let bushy = cost_of(Strategy::BushyDp);
        let sysr = cost_of(Strategy::SystemR);
        for heuristic in [
            Strategy::Greedy,
            Strategy::Goo,
            Strategy::QuickPick {
                samples: 4,
                seed: 9,
            },
            Strategy::Syntactic,
        ] {
            let h = cost_of(heuristic);
            assert!(
                bushy <= h + 1e-6,
                "{:?} n={n}: bushy {bushy} > {} {h}",
                topo,
                heuristic.name()
            );
        }
        assert!(
            bushy <= sysr + 1e-6,
            "{topo:?} n={n}: bushy beaten by left-deep"
        );
    }
}

/// The algebraic rewrites (pushdown, folding) change plans, never results.
#[test]
fn rewrites_preserve_results_and_never_hurt_cost() {
    let db = Database::with_defaults();
    let w = JoinWorkload::new(Topology::Chain, 4, 80, 13);
    w.load(&db, true).unwrap();
    let queries = [
        w.count_query(),
        w.filtered_query(150),
        format!(
            "SELECT {t0}.pk FROM {t0}, {t1} WHERE {t0}.fk = {t1}.pk \
             AND {t0}.payload < 500 AND 1 + 1 = 2",
            t0 = w.table(0),
            t1 = w.table(1)
        ),
    ];
    let model = db.optimizer_config().cost_model;
    for sql in &queries {
        db.set_rewrites(true);
        let with = db.query(sql).unwrap();
        let (_, plan_with) = db.plan_sql(sql).unwrap();
        db.set_rewrites(false);
        let without = db.query(sql).unwrap();
        let (_, plan_without) = db.plan_sql(sql).unwrap();
        db.set_rewrites(true);
        let (mut a, mut b) = (with, without);
        a.sort();
        b.sort();
        assert_eq!(a, b, "rewrites changed results for {sql}");
        assert!(
            model.total(plan_with.est_cost) <= model.total(plan_without.est_cost) + 1e-6,
            "rewrites made {sql} costlier: {} vs {}",
            model.total(plan_with.est_cost),
            model.total(plan_without.est_cost)
        );
    }
}

/// Planning is deterministic: same catalog, same query, same plan.
#[test]
fn planning_is_deterministic() {
    let db = Database::with_defaults();
    let w = JoinWorkload::new(Topology::Star, 5, 80, 77);
    w.load(&db, true).unwrap();
    let sql = w.count_query();
    let (_, a) = db.plan_sql(&sql).unwrap();
    let (_, b) = db.plan_sql(&sql).unwrap();
    assert_eq!(a, b);
}

/// The estimated cardinality at the root is invariant under the strategy
/// (it's a property of the query, not the plan).
#[test]
fn cardinality_estimate_is_plan_invariant() {
    let db = Database::with_defaults();
    let w = JoinWorkload::new(Topology::Chain, 4, 100, 5);
    w.load(&db, true).unwrap();
    let sql = w.count_query();
    let mut estimates = Vec::new();
    for s in [
        Strategy::SystemR,
        Strategy::BushyDp,
        Strategy::Greedy,
        Strategy::Syntactic,
    ] {
        db.set_strategy(s);
        let (_, p) = db.plan_sql(&sql).unwrap();
        estimates.push(p.est_rows);
    }
    for pair in estimates.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() / pair[0].max(1.0) < 1e-6,
            "row estimates differ across strategies: {estimates:?}"
        );
    }
}

/// The EXPLAIN-reported plan is the plan that executes: measured row counts
/// match across repeated runs and match the baseline strategy's answer.
#[test]
fn results_stable_across_runs_and_strategies() {
    let db = Database::with_defaults();
    let w = JoinWorkload::new(Topology::Cycle, 4, 60, 21);
    w.load(&db, true).unwrap();
    let sql = w.count_query();
    let first = db.query(&sql).unwrap();
    for _ in 0..3 {
        assert_eq!(db.query(&sql).unwrap(), first);
    }
    db.set_strategy(Strategy::Syntactic);
    assert_eq!(db.query(&sql).unwrap(), first);
}
