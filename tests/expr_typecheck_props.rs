//! Property tests for the expression type-checker — the static half of the
//! plan verifier.
//!
//! The checker's contract: if `data_type(schema)` says an expression is
//! well-typed, then evaluating it over *any* schema-conformant tuple —
//! including tuples full of NULLs — never returns a type error, and any
//! non-NULL result it produces carries the promised type. The properties
//! here pin that soundness claim plus the edge cases the verifier leans
//! on: NULL propagation through comparisons, cross-type (INT/FLOAT)
//! unification, aggregate input typing, and deeply nested expressions.

use evopt_common::expr::{col, lit};
use evopt_common::{
    AggFunc, BinOp, Column, DataType, EvoptError, Expr, Schema, Tuple, UnOp, Value,
};
use proptest::prelude::*;

/// Schema the generators close over: two INTs, a FLOAT, a STR, a BOOL.
fn schema() -> Schema {
    Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("b", DataType::Int),
        Column::new("f", DataType::Float),
        Column::new("s", DataType::Str),
        Column::new("flag", DataType::Bool),
    ])
}

/// A tuple conforming to [`schema`], with every slot independently
/// nullable — NULL propagation is the point, not a corner case.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    // The vendored proptest has no weighted prop_oneof; duplicate the
    // non-NULL arm to bias roughly 3:1 toward real values.
    let slot =
        |v: BoxedStrategy<Value>| prop_oneof![v.clone(), v.clone(), v, Just(Value::Null)].boxed();
    (
        slot((-50i64..50).prop_map(Value::Int).boxed()),
        slot((-50i64..50).prop_map(Value::Int).boxed()),
        slot(
            (-50i64..50)
                .prop_map(|i| Value::Float(i as f64 / 4.0))
                .boxed(),
        ),
        slot("[a-c]{0,3}".prop_map(Value::Str).boxed()),
        slot(any::<bool>().prop_map(Value::Bool).boxed()),
    )
        .prop_map(|(a, b, f, s, g)| Tuple::new(vec![a, b, f, s, g]))
}

/// Expressions over [`schema`] that may or may not type-check: columns of
/// every type, literals (including NULL), comparisons, arithmetic, logic,
/// IS NULL, negation — nested several levels deep.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0usize..5).prop_map(Expr::Column),
        (-20i64..20).prop_map(lit),
        (-8i64..8).prop_map(|i| lit(i as f64 / 2.0)),
        any::<bool>().prop_map(lit),
        Just(Expr::Literal(Value::Null)),
        "[a-c]{0,2}".prop_map(|s| Expr::Literal(Value::Str(s))),
    ];
    leaf.prop_recursive(6, 96, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Eq),
                    Just(BinOp::NotEq),
                    Just(BinOp::Lt),
                    Just(BinOp::LtEq),
                    Just(BinOp::Gt),
                    Just(BinOp::GtEq),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::IsNull,
                input: Box::new(e)
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::IsNotNull,
                input: Box::new(e)
            }),
            inner.prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                input: Box::new(e)
            }),
        ]
    })
}

/// Does a runtime value conform to a static type? NULL conforms to every
/// type (SQL's NULL is untyped); INT conforms to FLOAT via unification
/// (integer-valued arithmetic over mixed operands may stay integral).
fn conforms(v: &Value, t: DataType) -> bool {
    match v.data_type() {
        None => true,
        Some(vt) => vt == t || vt.unify(t) == Some(t),
    }
}

proptest! {
    /// Soundness: a well-typed expression never produces a runtime *type*
    /// error, and every non-NULL result carries the promised type. (Eval
    /// may still fail on division by zero — an arithmetic fault, which the
    /// type system does not claim to rule out; nothing else may fail.)
    #[test]
    fn prop_well_typed_exprs_eval_cleanly(e in arb_expr(), t in arb_tuple()) {
        let s = schema();
        if let Ok(want) = e.data_type(&s) {
            match e.eval(&t) {
                Ok(v) => prop_assert!(
                    conforms(&v, want),
                    "{} typed as {want} but evaluated to {v:?}", e
                ),
                Err(EvoptError::Execution(msg)) => prop_assert!(
                    msg.contains("division by zero") || msg.contains("overflow"),
                    "well-typed {} failed at runtime: {msg}", e
                ),
                Err(other) => prop_assert!(false, "{}: unexpected {other:?}", e),
            }
        }
    }

    /// NULL propagation through comparisons: comparing anything with NULL
    /// is NULL, never an error and never TRUE/FALSE.
    #[test]
    fn prop_null_comparisons_propagate(a in -50i64..50, op in prop_oneof![
        Just(BinOp::Eq), Just(BinOp::NotEq), Just(BinOp::Lt),
        Just(BinOp::LtEq), Just(BinOp::Gt), Just(BinOp::GtEq),
    ]) {
        let t = Tuple::new(vec![
            Value::Int(a), Value::Null, Value::Null, Value::Null, Value::Null,
        ]);
        // col(1) is NULL in this tuple.
        for e in [
            Expr::binary(op, col(0), col(1)),
            Expr::binary(op, col(1), col(0)),
            Expr::binary(op, col(1), col(1)),
        ] {
            prop_assert_eq!(e.data_type(&schema()).unwrap(), DataType::Bool);
            prop_assert_eq!(e.eval(&t).unwrap(), Value::Null, "{}", e);
        }
    }

    /// Cross-type comparisons: INT and FLOAT unify (and agree with numeric
    /// order at runtime); INT/STR and BOOL/INT are static type errors.
    #[test]
    fn prop_cross_type_comparisons(a in -50i64..50, q in -200i64..200) {
        let s = schema();
        let f = q as f64 / 4.0;
        let mixed = Expr::binary(BinOp::Lt, col(0), lit(f));
        prop_assert_eq!(mixed.data_type(&s).unwrap(), DataType::Bool);
        let t = Tuple::new(vec![
            Value::Int(a), Value::Null, Value::Null, Value::Null, Value::Null,
        ]);
        prop_assert_eq!(mixed.eval(&t).unwrap(), Value::Bool((a as f64) < f));

        // Incomparable pairs are rejected statically.
        prop_assert!(Expr::binary(BinOp::Lt, col(0), col(3)).data_type(&s).is_err());
        prop_assert!(Expr::binary(BinOp::Eq, col(4), col(0)).data_type(&s).is_err());
    }

    /// Aggregate input typing: COUNT accepts anything; SUM/AVG demand a
    /// numeric argument; MIN/MAX preserve the argument type; AVG always
    /// yields FLOAT; SUM preserves INT vs FLOAT.
    #[test]
    fn prop_aggregate_input_types(dt in prop_oneof![
        Just(DataType::Int), Just(DataType::Float),
        Just(DataType::Str), Just(DataType::Bool),
    ]) {
        let numeric = matches!(dt, DataType::Int | DataType::Float);
        prop_assert_eq!(AggFunc::Count.result_type(dt).unwrap(), DataType::Int);
        prop_assert_eq!(AggFunc::CountStar.result_type(dt).unwrap(), DataType::Int);
        prop_assert_eq!(AggFunc::Min.result_type(dt).unwrap(), dt);
        prop_assert_eq!(AggFunc::Max.result_type(dt).unwrap(), dt);
        if numeric {
            prop_assert_eq!(AggFunc::Sum.result_type(dt).unwrap(), dt);
            prop_assert_eq!(AggFunc::Avg.result_type(dt).unwrap(), DataType::Float);
        } else {
            prop_assert!(AggFunc::Sum.result_type(dt).is_err());
            prop_assert!(AggFunc::Avg.result_type(dt).is_err());
        }
    }

    /// Deep nesting: the checker is total — it returns Ok or Err without
    /// panicking or overflowing, and is deterministic.
    #[test]
    fn prop_deeply_nested_exprs_check_deterministically(e in arb_expr()) {
        let s = schema();
        let first = e.data_type(&s);
        let second = e.data_type(&s);
        match (first, second) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "{}: type-check not deterministic", e),
        }
    }

    /// A column reference past the schema is always a static error — the
    /// rule the plan verifier's schema checks are built on.
    #[test]
    fn prop_out_of_range_columns_rejected(i in 5usize..64) {
        prop_assert!(col(i).data_type(&schema()).is_err());
    }
}

/// Manually pinned ladder: a comparison chain nested 64 levels deep
/// type-checks in linear time and without stack overflow (the proptest
/// generator tops out around depth 6).
#[test]
fn very_deep_expression_ladder() {
    let mut e = col(0);
    for _ in 0..64 {
        e = Expr::binary(BinOp::Add, e, lit(1i64));
    }
    let wrapped = Expr::binary(BinOp::Lt, e, lit(0i64));
    assert_eq!(wrapped.data_type(&schema()).unwrap(), DataType::Bool);
}
