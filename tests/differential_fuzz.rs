//! Differential fuzzing: generate random schemas, data, and queries; every
//! enumeration strategy must return exactly the same rows. Any divergence
//! is an optimizer or executor bug (wrong predicate placement, broken
//! ordinal remapping, join-method semantics drift, ...).
//!
//! Deterministic: seeded `StdRng`, no proptest shrinking needed — failures
//! print the offending SQL.

use evopt::{Database, Strategy, Tuple, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct World {
    db: Database,
    tables: Vec<TableSpec>,
}

#[derive(Clone)]
struct TableSpec {
    name: String,
    /// (column name, is_int) — string columns otherwise.
    columns: Vec<(String, bool)>,
    /// Domain of int columns (values in 0..domain).
    domain: i64,
}

fn build_world(rng: &mut StdRng) -> World {
    let db = Database::with_defaults();
    let ntables = rng.random_range(2..=3usize);
    let mut tables = Vec::new();
    for t in 0..ntables {
        let ncols = rng.random_range(2..=4usize);
        let mut columns = vec![("c0".to_string(), true)]; // join column
        for c in 1..ncols {
            columns.push((format!("c{c}"), rng.random_bool(0.7)));
        }
        let name = format!("t{t}");
        let ddl_cols: Vec<String> = columns
            .iter()
            .map(|(n, is_int)| format!("{n} {}", if *is_int { "INT" } else { "STRING" }))
            .collect();
        db.execute(&format!("CREATE TABLE {name} ({})", ddl_cols.join(", ")))
            .unwrap();
        let rows = rng.random_range(30..=200usize);
        let domain = rng.random_range(5..=40i64);
        let mut tuples: Vec<Tuple> = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut v: Vec<Value> = Vec::with_capacity(columns.len());
            for (_, is_int) in &columns {
                v.push(if rng.random_bool(0.05) {
                    Value::Null
                } else if *is_int {
                    Value::Int(rng.random_range(0..domain))
                } else {
                    Value::Str(format!("s{}", rng.random_range(0..domain)))
                });
            }
            // Keep c0 non-null so joins have keys most of the time.
            if v[0].is_null() {
                v[0] = Value::Int(i64::from(rng.random_range(0..10u32)));
            }
            tuples.push(Tuple::new(v));
        }
        db.insert_tuples(&name, &tuples).unwrap();
        if rng.random_bool(0.6) {
            db.execute(&format!("CREATE INDEX {name}_c0 ON {name} (c0)"))
                .unwrap();
        }
        tables.push(TableSpec {
            name,
            columns,
            domain,
        });
    }
    db.execute("ANALYZE").unwrap();
    World { db, tables }
}

fn random_query(world: &World, rng: &mut StdRng) -> String {
    let k = rng.random_range(1..=world.tables.len());
    let chosen: Vec<&TableSpec> = world.tables.iter().take(k).collect();
    let from: Vec<String> = chosen.iter().map(|t| t.name.clone()).collect();
    let mut preds = Vec::new();
    // Chain the chosen tables on c0.
    for w in chosen.windows(2) {
        preds.push(format!("{}.c0 = {}.c0", w[0].name, w[1].name));
    }
    // Random local filters.
    for t in &chosen {
        if rng.random_bool(0.7) {
            let (col, is_int) = &t.columns[rng.random_range(0..t.columns.len())];
            if *is_int {
                let v = rng.random_range(0..t.domain);
                let op = ["=", "<", ">=", "<>"][rng.random_range(0..4usize)];
                preds.push(format!("{}.{col} {op} {v}", t.name));
            } else {
                let v = rng.random_range(0..t.domain);
                preds.push(format!("{}.{col} <> 's{v}'", t.name));
            }
        }
    }
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };
    // Aggregate or plain projection.
    if rng.random_bool(0.4) {
        let g = &chosen[0];
        format!(
            "SELECT {t}.c0, COUNT(*) AS n FROM {from}{where_clause} \
             GROUP BY {t}.c0 ORDER BY {t}.c0",
            t = g.name,
            from = from.join(", "),
        )
    } else {
        let cols: Vec<String> = chosen
            .iter()
            .flat_map(|t| {
                t.columns
                    .iter()
                    .take(2)
                    .map(move |(c, _)| format!("{}.{c}", t.name))
            })
            .collect();
        format!(
            "SELECT {} FROM {}{}",
            cols.join(", "),
            from.join(", "),
            where_clause
        )
    }
}

fn normalise(mut rows: Vec<Tuple>) -> Vec<Tuple> {
    rows.sort();
    rows
}

#[test]
fn strategies_agree_on_random_queries() {
    let strategies = [
        Strategy::SystemR,
        Strategy::BushyDp,
        Strategy::DpCcp,
        Strategy::Greedy,
        Strategy::Goo,
        Strategy::QuickPick {
            samples: 3,
            seed: 5,
        },
        Strategy::Syntactic,
    ];
    for world_seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(world_seed * 7919 + 1);
        let world = build_world(&mut rng);
        for _ in 0..8 {
            let sql = random_query(&world, &mut rng);
            world.db.set_strategy(Strategy::SystemR);
            let reference = normalise(
                world
                    .db
                    .query(&sql)
                    .unwrap_or_else(|e| panic!("query failed: {e}\nsql: {sql}")),
            );
            for s in strategies {
                world.db.set_strategy(s);
                let got = normalise(
                    world
                        .db
                        .query(&sql)
                        .unwrap_or_else(|e| panic!("{} failed: {e}\nsql: {sql}", s.name())),
                );
                assert_eq!(
                    got,
                    reference,
                    "strategy {} diverged on world {world_seed}\nsql: {sql}",
                    s.name()
                );
            }
        }
    }
}

#[test]
fn fuzzed_dml_keeps_indexes_consistent() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed + 100);
        let db = Database::with_defaults();
        db.execute("CREATE TABLE t (k INT NOT NULL, v INT)")
            .unwrap();
        db.execute("CREATE INDEX t_k ON t (k)").unwrap();
        let mut model: Vec<(i64, Option<i64>)> = Vec::new();
        for _ in 0..120 {
            match rng.random_range(0..10u32) {
                0..=5 => {
                    let k = rng.random_range(0..30i64);
                    let v = rng.random_range(0..100i64);
                    db.execute(&format!("INSERT INTO t VALUES ({k}, {v})"))
                        .unwrap();
                    model.push((k, Some(v)));
                }
                6..=7 => {
                    let k = rng.random_range(0..30i64);
                    db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap();
                    model.retain(|(mk, _)| *mk != k);
                }
                _ => {
                    let k = rng.random_range(0..30i64);
                    let v = rng.random_range(0..100i64);
                    db.execute(&format!("UPDATE t SET v = {v} WHERE k = {k}"))
                        .unwrap();
                    for m in &mut model {
                        if m.0 == k {
                            m.1 = Some(v);
                        }
                    }
                }
            }
        }
        // Every key's row count must match through the index path.
        db.execute("ANALYZE").unwrap();
        for k in 0..30i64 {
            let expect = model.iter().filter(|(mk, _)| *mk == k).count() as i64;
            let got = db
                .query(&format!("SELECT COUNT(*) FROM t WHERE k = {k}"))
                .unwrap()[0]
                .value(0)
                .unwrap()
                .as_i64()
                .unwrap();
            assert_eq!(got, expect, "seed {seed}, key {k}");
        }
    }
}
