//! Regression tests for the observability layer: `EXPLAIN ANALYZE` output
//! shape, agreement between instrumented and plain execution, and q-error
//! behaviour on perfectly-ANALYZEd data.

use evopt::{Database, Tuple, Value};

/// Two joined tables, indexed and ANALYZEd — big enough that plans have a
/// few operators, small enough to stay fast.
fn fixture() -> Database {
    let db = Database::with_defaults();
    db.execute("CREATE TABLE dept (id INT NOT NULL, name STRING NOT NULL)")
        .unwrap();
    db.execute(
        "CREATE TABLE emp (id INT NOT NULL, dept_id INT NOT NULL, \
         salary INT NOT NULL)",
    )
    .unwrap();
    let depts: Vec<Tuple> = (0..10)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::Str(format!("dept-{i}"))]))
        .collect();
    db.insert_tuples("dept", &depts).unwrap();
    let emps: Vec<Tuple> = (0..600)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Int(1000 + (i * 37) % 4000),
            ])
        })
        .collect();
    db.insert_tuples("emp", &emps).unwrap();
    db.execute("CREATE UNIQUE INDEX emp_id ON emp (id)")
        .unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

#[test]
fn explain_analyze_output_shape() {
    let db = fixture();
    let text = db
        .explain_analyze(
            "SELECT d.name, COUNT(*) FROM emp e \
             JOIN dept d ON e.dept_id = d.id GROUP BY d.name",
        )
        .unwrap();
    // Plan sections first, then the measured annotation block.
    assert!(text.contains("== logical =="), "{text}");
    assert!(text.contains("== physical"), "{text}");
    assert!(text.contains("== measured =="), "{text}");
    // Every operator line carries the estimate-vs-actual annotation.
    for needle in [
        "est rows=",
        "actual rows=",
        "q-err=",
        "nexts=",
        "time=",
        "pool=",
        "disk r/w=",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Query-level totals.
    assert!(text.contains("== query totals =="), "{text}");
    assert!(text.contains("hit rate"), "{text}");
    assert!(text.contains("page reads"), "{text}");
    assert!(text.contains("page writes"), "{text}");
    assert!(text.contains("max q-error:"), "{text}");
    assert!(text.contains("rows: 10"), "{text}");
    // Plan identity and optimizer cost ride along with the measurements.
    assert!(text.contains("plan digest: "), "{text}");
    assert!(text.contains("optimize time: "), "{text}");
}

#[test]
fn explain_analyze_renders_phase_table() {
    let db = fixture();
    let text = db
        .explain_analyze("SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_id = d.id")
        .unwrap();
    assert!(text.contains("== phases =="), "{text}");
    for phase in ["parse", "bind", "optimize", "execute", "total"] {
        assert!(text.contains(phase), "missing phase {phase:?} in:\n{text}");
    }
    // The total line restates the phase sum: parse it back out and check
    // the invariant the span guarantees by construction.
    let total_line = text
        .lines()
        .find(|l| l.starts_with("total"))
        .expect("total line");
    let total_us: u64 = total_line
        .split_whitespace()
        .nth(1)
        .and_then(|w| w.parse().ok())
        .expect("total wall_us");
    let phase_sum: u64 = total_line
        .split("(phases ")
        .nth(1)
        .and_then(|w| {
            w.trim_end()
                .trim_end_matches(')')
                .trim_end_matches("µs")
                .parse()
                .ok()
        })
        .expect("phase sum");
    assert!(
        phase_sum <= total_us,
        "phase sum {phase_sum} exceeds total {total_us}:\n{text}"
    );
    // Execute-phase counters ride along.
    assert!(text.contains("rows="), "{text}");
}

#[test]
fn explain_analyze_digest_matches_plan_sql() {
    let db = fixture();
    let sql = "SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_id = d.id";
    let (_, physical) = db.plan_sql(sql).unwrap();
    let text = db.explain_analyze(sql).unwrap();
    assert!(
        text.contains(&format!("plan digest: {}", physical.digest_hex())),
        "digest in EXPLAIN ANALYZE differs from plan_sql:\n{text}"
    );
}

#[test]
fn instrumented_rows_match_plain_query() {
    let db = fixture();
    // One query per plan shape: scan, filter, join, aggregate.
    let queries = [
        "SELECT * FROM emp",
        "SELECT * FROM emp WHERE salary > 3000",
        "SELECT e.id, d.name FROM emp e JOIN dept d ON e.dept_id = d.id",
        "SELECT dept_id, COUNT(*), SUM(salary) FROM emp GROUP BY dept_id",
    ];
    for sql in queries {
        let plain = db.query(sql).unwrap();
        let (instrumented, metrics) = db.query_with_metrics(sql).unwrap();
        assert_eq!(plain, instrumented, "row mismatch for {sql}");
        // The root operator's actual_rows is the result cardinality.
        assert_eq!(
            metrics.root().actual_rows as usize,
            plain.len(),
            "root actual_rows mismatch for {sql}"
        );
        // One metric slot per plan node, and a fully drained root sees one
        // next_batch() per emitted batch plus a trailing None — far fewer
        // calls than rows once batches fill up.
        let (_, physical) = db.plan_sql(sql).unwrap();
        assert_eq!(metrics.operators.len(), physical.node_count(), "{sql}");
        let batches = metrics.root().actual_rows.div_ceil(1024);
        assert!(
            metrics.root().next_calls > batches
                && metrics.root().next_calls <= metrics.root().actual_rows + 1,
            "root next_calls {} outside [{}, {}] for {sql}",
            metrics.root().next_calls,
            batches + 1,
            metrics.root().actual_rows + 1
        );
    }
}

#[test]
fn query_result_carries_metrics() {
    let db = fixture();
    // The plain path attaches no metrics...
    let plain = db.execute("SELECT * FROM dept").unwrap();
    assert!(plain.metrics().is_none());
    // ...the analyzed path populates them.
    let analyzed = db.execute_analyzed("SELECT * FROM dept").unwrap();
    let metrics = analyzed.metrics().expect("analyzed result has metrics");
    assert_eq!(metrics.root().actual_rows, 10);
    assert!(metrics.elapsed.as_nanos() > 0);
    // Equality ignores metrics: same rows compare equal either way.
    assert_eq!(plain, analyzed);
}

#[test]
fn q_error_is_one_on_analyzed_uniform_table() {
    // A perfectly uniform, freshly ANALYZEd table: the optimizer's
    // cardinality estimates should be exact, so every operator's q-error
    // is 1.0.
    let db = Database::with_defaults();
    db.execute("CREATE TABLE u (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    let rows: Vec<Tuple> = (0..1000)
        .map(|i| Tuple::new(vec![Value::Int(i % 50), Value::Int(i)]))
        .collect();
    db.insert_tuples("u", &rows).unwrap();
    db.execute("ANALYZE").unwrap();
    // Full scan: estimate must equal the exact row count.
    let (got, metrics) = db.query_with_metrics("SELECT * FROM u").unwrap();
    assert_eq!(got.len(), 1000);
    assert_eq!(metrics.root().est_rows, 1000.0);
    assert_eq!(metrics.root().q_error(), 1.0);
    assert_eq!(metrics.max_q_error(), 1.0);
}

#[test]
fn pool_and_disk_totals_are_consistent() {
    let db = fixture();
    let (_, metrics) = db
        .query_with_metrics("SELECT * FROM emp WHERE salary > 2000")
        .unwrap();
    // The root's inclusive counters cannot exceed the query totals, and a
    // table this size must touch the pool at least once.
    assert!(metrics.pool_hits + metrics.pool_misses > 0);
    assert!(metrics.root().pool_hits <= metrics.pool_hits);
    assert!(metrics.root().pool_misses <= metrics.pool_misses);
    assert!(metrics.root().disk_reads <= metrics.disk_reads);
    assert!(metrics.hit_rate() >= 0.0 && metrics.hit_rate() <= 1.0);
}
