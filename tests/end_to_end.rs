//! Cross-crate integration tests: SQL text in, correct rows out, through
//! the full stack (parser → binder → rewrites → cost-based optimizer →
//! Volcano executor → paged storage).

use evopt::{Database, DatabaseConfig, Strategy, Tuple, Value};

fn northwind() -> Database {
    let db = Database::with_defaults();
    db.execute(
        "CREATE TABLE products (id INT NOT NULL, category INT NOT NULL, \
         name STRING NOT NULL, price INT NOT NULL)",
    )
    .unwrap();
    db.execute(
        "CREATE TABLE sales (id INT NOT NULL, product_id INT NOT NULL, \
         quantity INT NOT NULL)",
    )
    .unwrap();
    let products: Vec<Tuple> = (0..200)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Int(i % 8),
                Value::Str(format!("product-{i:03}")),
                Value::Int(100 + (i * 13) % 900),
            ])
        })
        .collect();
    db.insert_tuples("products", &products).unwrap();
    let sales: Vec<Tuple> = (0..5000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Int((i * 7) % 200),
                Value::Int(1 + i % 9),
            ])
        })
        .collect();
    db.insert_tuples("sales", &sales).unwrap();
    db.execute("CREATE UNIQUE INDEX products_id ON products (id)")
        .unwrap();
    db.execute("CREATE INDEX sales_pid ON sales (product_id)")
        .unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// Brute-force reference: sum of quantity per category via plain scans.
fn reference_totals(db: &Database) -> Vec<(i64, i64)> {
    let products = db.query("SELECT id, category FROM products").unwrap();
    let sales = db.query("SELECT product_id, quantity FROM sales").unwrap();
    let mut cat_of = std::collections::HashMap::new();
    for p in &products {
        cat_of.insert(
            p.value(0).unwrap().as_i64().unwrap(),
            p.value(1).unwrap().as_i64().unwrap(),
        );
    }
    let mut totals: std::collections::BTreeMap<i64, i64> = Default::default();
    for s in &sales {
        let pid = s.value(0).unwrap().as_i64().unwrap();
        let q = s.value(1).unwrap().as_i64().unwrap();
        *totals.entry(cat_of[&pid]).or_default() += q;
    }
    totals.into_iter().collect()
}

#[test]
fn join_group_order_pipeline_matches_brute_force() {
    let db = northwind();
    let want = reference_totals(&db);
    let rows = db
        .query(
            "SELECT p.category, SUM(s.quantity) AS total \
             FROM sales s JOIN products p ON s.product_id = p.id \
             GROUP BY p.category ORDER BY p.category",
        )
        .unwrap();
    let got: Vec<(i64, i64)> = rows
        .iter()
        .map(|t| {
            (
                t.value(0).unwrap().as_i64().unwrap(),
                t.value(1).unwrap().as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(got, want);
}

#[test]
fn every_strategy_returns_identical_results() {
    let db = northwind();
    let sql = "SELECT p.name, s.quantity FROM sales s \
               JOIN products p ON s.product_id = p.id \
               WHERE p.price > 500 AND s.quantity >= 5 \
               ORDER BY p.name, s.quantity LIMIT 50";
    let reference = db.query(sql).unwrap();
    assert!(!reference.is_empty());
    for strategy in [
        Strategy::BushyDp,
        Strategy::Greedy,
        Strategy::Goo,
        Strategy::QuickPick {
            samples: 4,
            seed: 11,
        },
        Strategy::Syntactic,
    ] {
        db.set_strategy(strategy);
        assert_eq!(db.query(sql).unwrap(), reference, "{}", strategy.name());
    }
}

#[test]
fn predicates_toolbox_end_to_end() {
    let db = northwind();
    let count = |sql: &str| -> i64 {
        db.query(sql).unwrap()[0]
            .value(0)
            .unwrap()
            .as_i64()
            .unwrap()
    };
    assert_eq!(
        count("SELECT COUNT(*) FROM products WHERE name LIKE 'product-00%'"),
        10
    );
    assert_eq!(
        count("SELECT COUNT(*) FROM products WHERE id IN (1, 2, 3, 999)"),
        3
    );
    assert_eq!(
        count("SELECT COUNT(*) FROM products WHERE id BETWEEN 10 AND 19"),
        10
    );
    assert_eq!(
        count("SELECT COUNT(*) FROM products WHERE NOT (category = 0)"),
        200 - 25
    );
    assert_eq!(count("SELECT COUNT(*) FROM products WHERE name IS NULL"), 0);
    // Three-valued logic: NULL quantity would be filtered, none exist.
    assert_eq!(
        count("SELECT COUNT(*) FROM sales WHERE quantity > 0 OR quantity IS NULL"),
        5000
    );
}

#[test]
fn having_and_arithmetic_projection() {
    let db = northwind();
    let rows = db
        .query(
            "SELECT category, COUNT(*) AS n, MAX(price) - MIN(price) AS spread \
             FROM products GROUP BY category HAVING COUNT(*) > 20 \
             ORDER BY category",
        )
        .unwrap();
    assert_eq!(rows.len(), 8, "every category has 25 products");
    for r in &rows {
        assert_eq!(r.value(1).unwrap(), &Value::Int(25));
        assert!(r.value(2).unwrap().as_i64().unwrap() >= 0);
    }
}

#[test]
fn small_buffer_pool_gives_same_answers() {
    // The whole stack must be correct under memory pressure: 6-frame pool
    // forces eviction everywhere (scans, sorts, joins, index probes).
    let db = Database::new(DatabaseConfig {
        buffer_pages: 6,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (k INT NOT NULL, pad STRING NOT NULL)")
        .unwrap();
    let rows: Vec<Tuple> = (0..3000)
        .map(|i| {
            Tuple::new(vec![
                Value::Int((i * 31) % 500),
                Value::Str(format!("pad-{i:06}")),
            ])
        })
        .collect();
    db.insert_tuples("t", &rows).unwrap();
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
    db.execute("ANALYZE").unwrap();
    let got = db
        .query("SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY n DESC, k LIMIT 5")
        .unwrap();
    assert_eq!(got.len(), 5);
    assert_eq!(got[0].value(1).unwrap(), &Value::Int(6));
    // Self-join under pressure.
    let n = db
        .query("SELECT COUNT(*) FROM t a JOIN t b ON a.k = b.k WHERE a.k = 7")
        .unwrap()[0]
        .value(0)
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(n, 36, "6 rows with k=7 joined with themselves");
}

#[test]
fn explain_analyze_full_stack() {
    let db = northwind();
    match db
        .execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM sales s \
             JOIN products p ON s.product_id = p.id",
        )
        .unwrap()
    {
        evopt::QueryResult::Explained(text) => {
            assert!(text.contains("== logical =="), "{text}");
            assert!(text.contains("== physical"), "{text}");
            assert!(text.contains("== measured =="), "{text}");
            assert!(text.contains("rows: 1"), "{text}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn dml_visibility_and_index_consistency() {
    let db = northwind();
    db.execute("INSERT INTO products VALUES (900, 1, 'late-addition', 123)")
        .unwrap();
    // Visible via index path...
    let rows = db
        .query("SELECT name FROM products WHERE id = 900")
        .unwrap();
    assert_eq!(
        rows[0].value(0).unwrap(),
        &Value::Str("late-addition".into())
    );
    // ...and via full scan.
    let n = db.query("SELECT COUNT(*) FROM products").unwrap()[0]
        .value(0)
        .unwrap()
        .as_i64()
        .unwrap();
    assert_eq!(n, 201);
}
