//! Mutation-testing harness for the static plan verifier.
//!
//! A verifier that accepts everything is worse than none: it documents a
//! guarantee it does not provide. This suite proves the analysis has teeth
//! by deliberately corrupting *valid* physical plans — one well-defined
//! mutation class at a time — and asserting the verifier kills every
//! mutant. Each mutation operator models a realistic optimizer bug
//! (ordinal bookkeeping slips, dropped enforcer nodes, stale index
//! references, estimate underflow), and the expected rule code is pinned
//! so a rule regression cannot hide behind another rule's catch.

use std::sync::Arc;

use evopt_catalog::{analyze_table, AnalyzeConfig, Catalog};
use evopt_common::expr::{col, lit};
use evopt_common::AggFunc;
use evopt_common::{BinOp, Column, DataType, Expr, Schema, Tuple, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{KeyRange, PhysAgg, PhysOp, PhysicalPlan};
use evopt_core::verify::{verify_physical, VerifyPhase};
use evopt_storage::{BufferPool, DiskManager, PolicyKind};

/// A catalog with two analyzed tables and an index — enough to make every
/// operator family constructible as a *valid* plan.
///
/// `t(a INT, b STR)`, `u(c INT, d STR)`, index `u_c` on `u.c`.
fn world() -> Arc<Catalog> {
    let disk = Arc::new(DiskManager::new());
    let pool = BufferPool::new(disk, 64, PolicyKind::Lru);
    let cat = Arc::new(Catalog::new(pool));
    let t = cat
        .create_table(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
        )
        .unwrap();
    let u = cat
        .create_table(
            "u",
            Schema::new(vec![
                Column::new("c", DataType::Int),
                Column::new("d", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..50i64 {
        t.heap
            .insert(&Tuple::new(vec![
                Value::Int(i),
                Value::Str(format!("t{i}")),
            ]))
            .unwrap();
        u.heap
            .insert(&Tuple::new(vec![
                Value::Int(i % 10),
                Value::Str(format!("u{i}")),
            ]))
            .unwrap();
    }
    cat.create_index("u_c", "u", "c", false, false).unwrap();
    // create_index clone-and-swaps u's TableInfo (CoW catalog): re-fetch
    // so the stats land on the registered entry, not a stale snapshot.
    let u = cat.table("u").unwrap();
    analyze_table(&t, &AnalyzeConfig::default()).unwrap();
    analyze_table(&u, &AnalyzeConfig::default()).unwrap();
    cat
}

fn node(op: PhysOp, schema: Schema, rows: f64, cost: Cost) -> PhysicalPlan {
    PhysicalPlan {
        op,
        schema,
        est_rows: rows,
        est_cost: cost,
        output_order: None,
    }
}

fn scan(cat: &Catalog, table: &str, rows: f64) -> PhysicalPlan {
    let schema = cat.table(table).unwrap().schema.clone();
    node(
        PhysOp::SeqScan {
            table: table.into(),
            filter: None,
        },
        schema,
        rows,
        Cost::new(2.0, rows),
    )
}

fn sort_on(input: PhysicalPlan, key: usize) -> PhysicalPlan {
    let schema = input.schema.clone();
    let rows = input.est_rows;
    let cost = Cost::new(input.est_cost.io, input.est_cost.cpu + rows * 2.0);
    node(
        PhysOp::Sort {
            input: Box::new(input),
            keys: vec![(key, true)],
        },
        schema,
        rows,
        cost,
    )
}

/// Valid hash join `t ⋈ u ON t.a = u.c`.
fn hash_join(cat: &Catalog) -> PhysicalPlan {
    let l = scan(cat, "t", 50.0);
    let r = scan(cat, "u", 50.0);
    let schema = l.schema.join(&r.schema);
    node(
        PhysOp::HashJoin {
            left: Box::new(l),
            right: Box::new(r),
            left_key: 0,
            right_key: 0,
            residual: None,
        },
        schema,
        250.0,
        Cost::new(4.0, 400.0),
    )
}

/// Valid merge join with explicit sort enforcers on both inputs.
fn merge_join(cat: &Catalog) -> PhysicalPlan {
    let l = sort_on(scan(cat, "t", 50.0), 0);
    let r = sort_on(scan(cat, "u", 50.0), 0);
    let schema = l.schema.join(&r.schema);
    node(
        PhysOp::SortMergeJoin {
            left: Box::new(l),
            right: Box::new(r),
            left_key: 0,
            right_key: 0,
            residual: None,
        },
        schema,
        250.0,
        Cost::new(4.0, 600.0),
    )
}

/// Valid filter `t.a > 5` over a scan.
fn filter(cat: &Catalog) -> PhysicalPlan {
    let s = scan(cat, "t", 50.0);
    let schema = s.schema.clone();
    node(
        PhysOp::Filter {
            input: Box::new(s),
            predicate: Expr::binary(BinOp::Gt, col(0), lit(5i64)),
        },
        schema,
        20.0,
        Cost::new(2.0, 100.0),
    )
}

/// Valid index scan over `u_c` with a closed range.
fn index_scan(cat: &Catalog) -> PhysicalPlan {
    let schema = cat.table("u").unwrap().schema.clone();
    node(
        PhysOp::IndexScan {
            table: "u".into(),
            index: "u_c".into(),
            range: KeyRange {
                low: std::ops::Bound::Included(Value::Int(2)),
                high: std::ops::Bound::Included(Value::Int(7)),
            },
            residual: None,
            clustered: false,
        },
        schema,
        25.0,
        Cost::new(5.0, 25.0),
    )
}

/// Valid streaming aggregate: sorted input, grouped on the sort column.
fn stream_agg(cat: &Catalog) -> PhysicalPlan {
    let sorted = sort_on(scan(cat, "t", 50.0), 0);
    let schema = Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::new("n", DataType::Int),
    ]);
    node(
        PhysOp::SortAggregate {
            input: Box::new(sorted),
            group_by: vec![0],
            aggs: vec![PhysAgg {
                func: AggFunc::CountStar,
                arg: None,
            }],
        },
        schema,
        10.0,
        Cost::new(2.0, 200.0),
    )
}

/// Valid projection `SELECT b, a FROM t`.
fn project(cat: &Catalog) -> PhysicalPlan {
    let s = scan(cat, "t", 50.0);
    let schema = Schema::new(vec![
        Column::new("b", DataType::Str),
        Column::new("a", DataType::Int),
    ]);
    node(
        PhysOp::Project {
            input: Box::new(s),
            exprs: vec![col(1), col(0)],
        },
        schema,
        50.0,
        Cost::new(2.0, 100.0),
    )
}

/// Valid LIMIT 10.
fn limit(cat: &Catalog) -> PhysicalPlan {
    let s = scan(cat, "t", 50.0);
    let schema = s.schema.clone();
    node(
        PhysOp::Limit {
            input: Box::new(s),
            limit: 10,
        },
        schema,
        10.0,
        Cost::new(2.0, 50.0),
    )
}

/// Valid block nested loops.
fn bnl(cat: &Catalog) -> PhysicalPlan {
    let l = scan(cat, "t", 50.0);
    let r = scan(cat, "u", 50.0);
    let schema = l.schema.join(&r.schema);
    node(
        PhysOp::BlockNestedLoopJoin {
            left: Box::new(l),
            right: Box::new(r),
            predicate: Some(Expr::eq(col(0), col(2))),
            block_pages: 4,
        },
        schema,
        250.0,
        Cost::new(8.0, 2_500.0),
    )
}

/// One mutation operator: a named corruption of a valid plan, plus the
/// rule code expected to kill it.
struct Mutation {
    name: &'static str,
    expect_rule: &'static str,
    build: fn(&Catalog) -> PhysicalPlan,
}

fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "swap filter column out of range",
            expect_rule: "schema/column-ref",
            build: |cat| {
                let mut p = filter(cat);
                if let PhysOp::Filter { predicate, .. } = &mut p.op {
                    *predicate = Expr::binary(BinOp::Gt, col(9), lit(5i64));
                }
                p
            },
        },
        Mutation {
            name: "drop the sort enforcer under a merge join",
            expect_rule: "order/merge-input",
            build: |cat| {
                let mut p = merge_join(cat);
                if let PhysOp::SortMergeJoin { left, .. } = &mut p.op {
                    // Replace Sort(scan) by the bare scan: order lost.
                    let PhysOp::Sort { input, .. } = left.op.clone() else {
                        unreachable!()
                    };
                    *left = input;
                }
                p
            },
        },
        Mutation {
            name: "flip a hash-join key to an incomparable type",
            expect_rule: "key/type",
            build: |cat| {
                let mut p = hash_join(cat);
                if let PhysOp::HashJoin { right_key, .. } = &mut p.op {
                    *right_key = 1; // u.d is STRING; t.a is INT
                }
                p
            },
        },
        Mutation {
            name: "negate a cardinality estimate",
            expect_rule: "est/rows",
            build: |cat| {
                let mut p = hash_join(cat);
                p.est_rows = -p.est_rows;
                p
            },
        },
        Mutation {
            name: "poison a cost with NaN",
            expect_rule: "est/cost",
            build: |cat| {
                let mut p = hash_join(cat);
                p.est_cost = Cost::new(f64::NAN, p.est_cost.cpu);
                p
            },
        },
        Mutation {
            name: "point an index scan at a nonexistent index",
            expect_rule: "index/exists",
            build: |cat| {
                let mut p = index_scan(cat);
                if let PhysOp::IndexScan { index, .. } = &mut p.op {
                    *index = "u_gone".into();
                }
                p
            },
        },
        Mutation {
            name: "drop a column from a join's output schema",
            expect_rule: "schema/propagation",
            build: |cat| {
                let mut p = hash_join(cat);
                let cols: Vec<Column> = p.schema.columns()[..3].to_vec();
                p.schema = Schema::new(cols);
                p
            },
        },
        Mutation {
            name: "filter estimate above its input",
            expect_rule: "est/filter-monotone",
            build: |cat| {
                let mut p = filter(cat);
                p.est_rows = 5_000.0; // input scan estimates 50
                p
            },
        },
        Mutation {
            name: "projection arity mismatch",
            expect_rule: "schema/arity",
            build: |cat| {
                let mut p = project(cat);
                if let PhysOp::Project { exprs, .. } = &mut p.op {
                    exprs.pop();
                }
                p
            },
        },
        Mutation {
            name: "zero-page block nested loops",
            expect_rule: "join/block-pages",
            build: |cat| {
                let mut p = bnl(cat);
                if let PhysOp::BlockNestedLoopJoin { block_pages, .. } = &mut p.op {
                    *block_pages = 0;
                }
                p
            },
        },
        Mutation {
            name: "non-boolean filter predicate",
            expect_rule: "expr/type",
            build: |cat| {
                let mut p = filter(cat);
                if let PhysOp::Filter { predicate, .. } = &mut p.op {
                    *predicate = Expr::binary(BinOp::Add, col(0), lit(1i64));
                }
                p
            },
        },
        Mutation {
            name: "streaming aggregate over unsorted input",
            expect_rule: "order/stream-agg",
            build: |cat| {
                let mut p = stream_agg(cat);
                if let PhysOp::SortAggregate { input, .. } = &mut p.op {
                    let PhysOp::Sort { input: inner, .. } = input.op.clone() else {
                        unreachable!()
                    };
                    *input = inner;
                }
                p
            },
        },
        Mutation {
            name: "limit estimate above the limit",
            expect_rule: "est/limit",
            build: |cat| {
                let mut p = limit(cat);
                p.est_rows = 40.0; // LIMIT 10
                p
            },
        },
        Mutation {
            name: "string bound on an integer index key",
            expect_rule: "key/type",
            build: |cat| {
                let mut p = index_scan(cat);
                if let PhysOp::IndexScan { range, .. } = &mut p.op {
                    *range = KeyRange {
                        low: std::ops::Bound::Included(Value::Str("x".into())),
                        high: std::ops::Bound::Unbounded,
                    };
                }
                p
            },
        },
        Mutation {
            name: "cumulative cost below a summed input",
            expect_rule: "est/cost-monotone",
            build: |cat| {
                let mut p = hash_join(cat);
                p.est_cost = Cost::new(0.0, 1.0); // children cost ~52 each
                p
            },
        },
    ]
}

/// Every base plan the mutations start from must itself verify clean — a
/// dirty base would make the kills vacuous.
#[test]
fn base_plans_verify_clean() {
    let cat = world();
    let bases: Vec<(&str, PhysicalPlan)> = vec![
        ("hash_join", hash_join(&cat)),
        ("merge_join", merge_join(&cat)),
        ("filter", filter(&cat)),
        ("index_scan", index_scan(&cat)),
        ("stream_agg", stream_agg(&cat)),
        ("project", project(&cat)),
        ("limit", limit(&cat)),
        ("bnl", bnl(&cat)),
    ];
    for (name, p) in bases {
        let report = verify_physical(&p, Some(&cat), VerifyPhase::PostPhysical);
        assert!(report.ok(), "{name}: unexpected issues {:?}", report.issues);
    }
}

/// The headline: 100% mutation kill rate, with every mutant killed by the
/// rule written for its class.
#[test]
fn verifier_kills_every_mutation_class() {
    let cat = world();
    let muts = mutations();
    assert!(muts.len() >= 8, "need at least 8 mutation operators");
    let mut killed = 0usize;
    for m in &muts {
        let corrupt = (m.build)(&cat);
        let report = verify_physical(&corrupt, Some(&cat), VerifyPhase::PostPhysical);
        assert!(
            !report.ok(),
            "mutation '{}' survived: the verifier accepted a corrupt plan",
            m.name
        );
        assert!(
            report.issues.iter().any(|i| i.rule == m.expect_rule),
            "mutation '{}' was caught, but not by rule {} (got {:?})",
            m.name,
            m.expect_rule,
            report.issues
        );
        killed += 1;
    }
    assert_eq!(killed, muts.len(), "kill rate below 100%");
    // Distinct mutation classes, by rule code.
    let mut classes: Vec<&str> = muts.iter().map(|m| m.expect_rule).collect();
    classes.sort_unstable();
    classes.dedup();
    assert!(
        classes.len() >= 8,
        "mutation classes collapsed: {classes:?}"
    );
}

/// A verify failure is a structured error, never a panic: run every mutant
/// through `into_result` and demand a plan error mentioning the rule.
#[test]
fn verify_errors_are_structured_not_panics() {
    let cat = world();
    for m in mutations() {
        let corrupt = (m.build)(&cat);
        let err = verify_physical(&corrupt, Some(&cat), VerifyPhase::PostPhysical)
            .into_result()
            .unwrap_err();
        let msg = err.message();
        assert!(
            msg.contains("plan verification failed") && msg.contains(m.expect_rule),
            "mutation '{}': unexpected error text {msg}",
            m.name
        );
    }
}
