//! Integration tests for the observability layer: the optimizer search
//! trace (`EXPLAIN TRACE`), the engine metrics registry, the query log
//! (`SHOW QUERY LOG`), statement-phase spans, and the contention
//! histograms at the engine's wait points.
//!
//! The load-bearing property is that observation never perturbs the
//! observed: tracing a query must not change the chosen plan or its
//! result, spans must not change a digest or a row, and metrics must be
//! pure accounting.

use evopt::{Database, DatabaseConfig, Durability, Phase, QueryResult, Strategy, Tuple, Value};
use evopt_workload::tpch_lite::queries;
use evopt_workload::{load_tpch_lite, load_wisconsin};

/// Order-insensitive fingerprint of a result set.
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    keys.sort();
    keys
}

/// Wisconsin + TPC-H-lite + an empty table: the batch-equivalence fixture.
fn fixture() -> Database {
    let db = Database::with_defaults();
    load_wisconsin(&db, "wisc", 2500, 11).unwrap();
    db.execute("CREATE UNIQUE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    db.execute("CREATE TABLE empty_t (x INT, y STRING)")
        .unwrap();
    load_tpch_lite(&db, 0.2, 23).unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// The batch-equivalence SQL battery: one query per operator family plus
/// the edge cases (kept in sync with `tests/batch_equivalence.rs`).
fn query_battery() -> Vec<&'static str> {
    vec![
        "SELECT unique1, stringu1 FROM wisc",
        "SELECT unique1 * 2, ten_pct FROM wisc WHERE one_pct < 7",
        "SELECT * FROM wisc WHERE odd = 1 AND ten_pct BETWEEN 2 AND 5",
        "SELECT * FROM wisc WHERE unique1 < 0",
        "SELECT * FROM empty_t WHERE x > 0",
        "SELECT COUNT(*), SUM(x) FROM empty_t",
        "SELECT y, COUNT(*) FROM empty_t GROUP BY y",
        "SELECT * FROM empty_t ORDER BY x",
        "SELECT stringu1 FROM wisc WHERE unique1 = 1234",
        "SELECT unique1 FROM wisc WHERE unique1 BETWEEN 100 AND 300",
        "SELECT unique1 FROM wisc WHERE unique1 < 500 AND odd = 0",
        "SELECT unique2 FROM wisc LIMIT 7",
        "SELECT unique1 FROM wisc ORDER BY unique1 LIMIT 1500",
        "SELECT unique2 FROM wisc LIMIT 0",
        "SELECT unique1, stringu1 FROM wisc ORDER BY unique1",
        "SELECT one_pct, unique2 FROM wisc ORDER BY one_pct, unique2",
        "SELECT COUNT(*), SUM(unique1), MIN(unique1), MAX(unique1), AVG(ten_pct) FROM wisc",
        "SELECT ten_pct, COUNT(*) AS n, SUM(unique2) FROM wisc GROUP BY ten_pct ORDER BY ten_pct",
        "SELECT DISTINCT twenty_pct FROM wisc ORDER BY twenty_pct",
        queries::REVENUE_PER_NATION,
        queries::CUSTOMER_ORDERS,
        queries::SHIPPED_BIG_ORDERS,
    ]
}

/// Five chained tables for join-order enumeration tests. No GROUP BY in
/// the test queries: an aggregate's order-hint probe enumerates the join
/// subtree twice, which would make counters and memo size incomparable.
fn five_way_fixture() -> Database {
    let db = Database::with_defaults();
    for (i, rows) in [40i64, 200, 1000, 25, 500].iter().enumerate() {
        let t = format!("t{i}");
        db.execute(&format!("CREATE TABLE {t} (k INT NOT NULL, v INT)"))
            .unwrap();
        let tuples: Vec<Tuple> = (0..*rows)
            .map(|r| Tuple::new(vec![Value::Int(r % 40), Value::Int(r)]))
            .collect();
        db.insert_tuples(&t, &tuples).unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db
}

const FIVE_WAY_SQL: &str = "SELECT t0.v FROM t0 \
     JOIN t1 ON t0.k = t1.k \
     JOIN t2 ON t1.k = t2.k \
     JOIN t3 ON t2.k = t3.k \
     JOIN t4 ON t3.k = t4.k";

// -- EXPLAIN TRACE ----------------------------------------------------------

#[test]
fn explain_trace_renders_search_journal() {
    let db = five_way_fixture();
    let text = match db
        .execute(&format!("EXPLAIN TRACE {FIVE_WAY_SQL}"))
        .unwrap()
    {
        QueryResult::Explained(text) => text,
        other => panic!("{other:?}"),
    };
    assert!(text.contains("== logical =="), "{text}");
    assert!(text.contains("== physical (system-r) =="), "{text}");
    assert!(text.contains("== trace (system-r) =="), "{text}");
    assert!(text.contains("plans considered: "), "{text}");
    assert!(text.contains("pruned: "), "{text}");
    assert!(text.contains("retained: "), "{text}");
    assert!(text.contains("memo entries: "), "{text}");
    assert!(text.contains("enumeration time: "), "{text}");
    assert!(text.contains("level 1: table="), "{text}");
    assert!(text.contains("level 5: table="), "{text}");
    assert!(text.contains("+ consider"), "{text}");
    assert!(text.contains("- prune"), "{text}");
}

#[test]
fn explain_trace_composes_with_analyze() {
    let db = five_way_fixture();
    for sql in [
        format!("EXPLAIN TRACE ANALYZE {FIVE_WAY_SQL}"),
        format!("EXPLAIN ANALYZE TRACE {FIVE_WAY_SQL}"),
    ] {
        let text = match db.execute(&sql).unwrap() {
            QueryResult::Explained(text) => text,
            other => panic!("{other:?}"),
        };
        assert!(text.contains("== trace (system-r) =="), "{text}");
        assert!(text.contains("== measured =="), "{text}");
        assert!(text.contains("plan digest: "), "{text}");
    }
}

#[test]
fn five_way_join_trace_counts_are_consistent() {
    // The acceptance criterion: on a 5-way join, considered/pruned must be
    // consistent with the DP table — every plan routed into the dominance
    // table either survives in the memo or was pruned exactly once.
    let db = five_way_fixture();
    let traced = db.query_traced(FIVE_WAY_SQL).unwrap();
    let t = &traced.trace;
    assert!(t.considered > 0);
    assert!(t.memo_entries > 0);
    assert_eq!(
        t.considered,
        t.pruned + t.memo_entries as u64,
        "considered {} != pruned {} + memo {}",
        t.considered,
        t.pruned,
        t.memo_entries
    );
    assert_eq!(t.retained(), t.memo_entries as u64);
    // System R DP fills one level per join size: 1..=5.
    let levels: Vec<u32> = t.levels.iter().map(|l| l.level).collect();
    assert_eq!(levels, vec![1, 2, 3, 4, 5], "{levels:?}");
}

#[test]
fn dp_considers_strictly_more_plans_than_greedy() {
    let db = five_way_fixture();
    db.set_strategy(Strategy::SystemR);
    let dp = db.query_traced(FIVE_WAY_SQL).unwrap();
    db.set_strategy(Strategy::Greedy);
    let greedy = db.query_traced(FIVE_WAY_SQL).unwrap();
    assert!(
        dp.trace.considered > greedy.trace.considered,
        "dp_sysr considered {}, greedy {}",
        dp.trace.considered,
        greedy.trace.considered
    );
    // Both strategies still agree on the answer.
    assert_eq!(normalized(&dp.rows), normalized(&greedy.rows));
}

// -- trace overhead: observation never perturbs -----------------------------

#[test]
fn tracing_never_changes_plan_or_result() {
    // The differential acceptance test: across the whole batch-equivalence
    // battery, EXPLAIN TRACE / query_traced picks the same plan (by
    // digest) and returns the same rows as the plain path.
    let db = fixture();
    for sql in query_battery() {
        let plain_rows = db.query(sql).unwrap();
        let (_, plain_plan) = db.plan_sql(sql).unwrap();
        let traced = db.query_traced(sql).unwrap();
        assert_eq!(
            plain_plan.digest_hex(),
            traced.plan.digest_hex(),
            "tracing changed the chosen plan for {sql}"
        );
        assert_eq!(
            normalized(&plain_rows),
            normalized(&traced.rows),
            "tracing changed the result of {sql}"
        );
        // Single-table queries enumerate no join orders; every join query
        // must have recorded search work.
        if sql.contains("JOIN") {
            assert!(traced.trace.considered > 0, "no search recorded for {sql}");
        }
        // The rendered journal never panics and always carries the header.
        assert!(traced.trace.render().contains("plans considered: "));
    }
}

// -- SHOW QUERY LOG ---------------------------------------------------------

#[test]
fn show_query_log_returns_recent_queries() {
    let db = fixture();
    let battery = [
        "SELECT COUNT(*) FROM wisc",
        "SELECT unique2 FROM wisc LIMIT 7",
    ];
    for sql in battery {
        db.query(sql).unwrap();
    }
    let (schema, rows) = match db.execute("SHOW QUERY LOG").unwrap() {
        QueryResult::Rows { schema, rows, .. } => (schema, rows),
        other => panic!("{other:?}"),
    };
    let col = |name: &str| schema.resolve(None, name).unwrap();
    // Newest first; ANALYZE/DDL/SHOW don't enter the log.
    assert!(rows.len() >= battery.len());
    assert_eq!(
        rows[0].value(col("sql")).unwrap(),
        &Value::Str(battery[1].into())
    );
    assert_eq!(
        rows[1].value(col("sql")).unwrap(),
        &Value::Str(battery[0].into())
    );
    for row in &rows {
        // q-error is well-defined (≥ 1) for every entry.
        match row.value(col("q_error")).unwrap() {
            Value::Float(q) => assert!(*q >= 1.0, "q-error {q} < 1"),
            other => panic!("{other:?}"),
        }
        match row.value(col("plan_digest")).unwrap() {
            Value::Str(d) => assert_eq!(d.len(), 16, "digest {d:?}"),
            other => panic!("{other:?}"),
        }
    }
    // COUNT(*) estimates one output row exactly: q-error 1, LIMIT 7 got 7.
    assert_eq!(rows[1].value(col("actual_rows")).unwrap(), &Value::Int(1));
    assert_eq!(rows[0].value(col("actual_rows")).unwrap(), &Value::Int(7));
}

#[test]
fn slow_query_flagging_respects_threshold() {
    let db = fixture();
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let log = db.query_log().entries();
    assert!(!log[0].slow, "default 250ms threshold flagged a tiny query");
    // Threshold 0: everything is slow.
    db.set_slow_query_threshold_us(0);
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let log = db.query_log().entries();
    assert!(log[0].slow);
    assert!(db.metrics_snapshot().slow_queries >= 1);
}

#[test]
fn query_log_is_a_bounded_ring() {
    let db = Database::new(DatabaseConfig {
        query_log_cap: 4,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    for i in 0..10 {
        db.query(&format!("SELECT x FROM t WHERE x > {i}")).unwrap();
    }
    let entries = db.query_log().entries();
    assert_eq!(entries.len(), 4);
    // Newest first: the last query issued leads.
    assert_eq!(entries[0].sql, "SELECT x FROM t WHERE x > 9");
    assert_eq!(entries[3].sql, "SELECT x FROM t WHERE x > 6");
}

// -- metrics registry -------------------------------------------------------

#[test]
fn metrics_snapshot_counts_engine_activity() {
    let db = fixture();
    let before = db.metrics_snapshot();
    let n = 5u64;
    for _ in 0..n {
        // A join: exercises the enumerator so plans_considered moves.
        db.query(queries::CUSTOMER_ORDERS).unwrap();
    }
    let snap = db.metrics_snapshot();
    assert_eq!(snap.queries - before.queries, n);
    assert_eq!(snap.optimize_calls - before.optimize_calls, n);
    assert!(snap.plans_considered > before.plans_considered);
    assert!(snap.exec_rows > before.exec_rows);
    assert!(snap.exec_batches > before.exec_batches);
    assert_eq!(
        snap.optimize_time_us.count - before.optimize_time_us.count,
        n
    );
    assert_eq!(snap.execute_time_us.count - before.execute_time_us.count, n);
    // Storage section is live pool/disk state: the fixture load alone did
    // plenty of traffic.
    assert!(snap.pool_hits + snap.pool_misses > 0);
    assert!(snap.hit_rate() > 0.0 && snap.hit_rate() <= 1.0);
}

#[test]
fn metrics_text_is_prometheus_shaped() {
    let db = fixture();
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let text = db.metrics_text();
    for needle in [
        "# TYPE evopt_queries_total counter",
        "evopt_pool_hits_total ",
        "evopt_plans_considered_total ",
        "evopt_exec_rows_total ",
        "evopt_optimize_time_us_bucket{le=\"+Inf\"}",
        "evopt_execute_time_us_sum ",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn metrics_disabled_is_inert() {
    let db = Database::new(DatabaseConfig {
        metrics: false,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.query("SELECT * FROM t").unwrap();
    let snap = db.metrics_snapshot();
    // Engine counters stay zero; the query log records nothing.
    assert_eq!(snap.queries, 0);
    assert_eq!(snap.optimize_calls, 0);
    assert_eq!(snap.exec_rows, 0);
    assert!(db.query_log().is_empty());
    // The storage section still reflects live pool state.
    assert!(snap.pool_hits + snap.pool_misses > 0);
}

// -- statement spans --------------------------------------------------------

#[test]
fn select_spans_record_phases_within_total() {
    let db = fixture();
    db.query(queries::CUSTOMER_ORDERS).unwrap();
    let entry = &db.query_log().entries()[0];
    let span = entry.span.as_ref().expect("spans are on by default");
    assert_eq!(span.session_id, 0, "default session attribution");
    // A SELECT runs parse → bind → optimize → execute (no commit).
    for phase in [Phase::Parse, Phase::Bind, Phase::Optimize, Phase::Execute] {
        assert!(
            span.phase_us(phase).is_some(),
            "missing {} in {:?}",
            phase.label(),
            span
        );
    }
    assert!(span.phase_us(Phase::Commit).is_none(), "{span:?}");
    // Disjoint sequential sub-intervals of one enclosing clock.
    assert!(
        span.phase_sum_us() <= span.total_us,
        "phase sum {} exceeds total {}",
        span.phase_sum_us(),
        span.total_us
    );
    // The optimize phase carries the search counters.
    let optimize = span
        .phases
        .iter()
        .find(|p| p.phase == Phase::Optimize)
        .unwrap();
    assert!(
        optimize.counters.iter().any(|(k, _)| *k == "considered"),
        "{optimize:?}"
    );
    // The execute phase carries the result cardinality.
    let execute = span
        .phases
        .iter()
        .find(|p| p.phase == Phase::Execute)
        .unwrap();
    assert!(
        execute.counters.iter().any(|(k, _)| *k == "rows"),
        "{execute:?}"
    );
}

#[test]
fn write_spans_record_commit_phase() {
    let db = Database::new(DatabaseConfig {
        durability: Durability::Wal,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT NOT NULL)").unwrap();
    // SHOW QUERY LOG only records SELECTs; inspect the write span via the
    // EXPLAIN-free route: run the write, then check the commit histograms
    // moved (the span itself is attached to the statement, not the log).
    let before = db.metrics_snapshot();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    let snap = db.metrics_snapshot();
    assert_eq!(
        snap.commit_lock_wait_us.count - before.commit_lock_wait_us.count,
        1,
        "one commit-lock acquisition per write statement"
    );
    assert!(
        snap.wal_sync_wait_us.count > before.wal_sync_wait_us.count,
        "the WAL sync wait was timed"
    );
}

#[test]
fn spans_never_change_plan_or_result() {
    // The span differential: across the whole battery, spans on vs off
    // picks the same plan (by digest) and returns the same rows.
    let db = fixture();
    for sql in query_battery() {
        db.set_spans(true);
        let rows_on = db.query(sql).unwrap();
        let digest_on = db.query_log().entries()[0].plan_digest.clone();
        db.set_spans(false);
        let rows_off = db.query(sql).unwrap();
        let entry = &db.query_log().entries()[0];
        assert_eq!(
            digest_on, entry.plan_digest,
            "spans changed the chosen plan for {sql}"
        );
        assert!(entry.span.is_none(), "spans off still recorded for {sql}");
        assert_eq!(
            normalized(&rows_on),
            normalized(&rows_off),
            "spans changed the result of {sql}"
        );
    }
    db.set_spans(true);
}

#[test]
fn spans_are_strategy_neutral() {
    // Same differential across every enumeration strategy on a 5-way
    // join: the span recorder must not perturb any enumerator.
    let db = five_way_fixture();
    for strategy in [
        Strategy::SystemR,
        Strategy::BushyDp,
        Strategy::DpCcp,
        Strategy::Greedy,
        Strategy::Goo,
        Strategy::QuickPick {
            samples: 16,
            seed: 1,
        },
        Strategy::Syntactic,
    ] {
        db.set_strategy(strategy);
        db.set_spans(true);
        let rows_on = db.query(FIVE_WAY_SQL).unwrap();
        let digest_on = db.query_log().entries()[0].plan_digest.clone();
        db.set_spans(false);
        let rows_off = db.query(FIVE_WAY_SQL).unwrap();
        let digest_off = db.query_log().entries()[0].plan_digest.clone();
        assert_eq!(digest_on, digest_off, "{strategy:?}");
        assert_eq!(normalized(&rows_on), normalized(&rows_off), "{strategy:?}");
    }
}

#[test]
fn show_query_log_attributes_sessions_and_phases() {
    let db = std::sync::Arc::new(fixture());
    let s1 = db.session();
    let s2 = db.session();
    s1.execute("SELECT COUNT(*) FROM wisc").unwrap();
    s2.execute("SELECT unique2 FROM wisc LIMIT 3").unwrap();
    let (schema, rows) = match db.execute("SHOW QUERY LOG").unwrap() {
        QueryResult::Rows { schema, rows, .. } => (schema, rows),
        other => panic!("{other:?}"),
    };
    let col = |name: &str| schema.resolve(None, name).unwrap();
    // Newest first: s2's query leads, attributed to its session id.
    assert_eq!(
        rows[0].value(col("session_id")).unwrap(),
        &Value::Int(s2.id() as i64)
    );
    assert_eq!(
        rows[1].value(col("session_id")).unwrap(),
        &Value::Int(s1.id() as i64)
    );
    assert_ne!(
        rows[0].value(col("session_id")).unwrap(),
        rows[1].value(col("session_id")).unwrap()
    );
    // The phases column carries the compact span rendering.
    match rows[0].value(col("phases")).unwrap() {
        Value::Str(s) => {
            assert!(s.contains("parse="), "{s:?}");
            assert!(s.contains("execute="), "{s:?}");
        }
        other => panic!("{other:?}"),
    }
}

// -- contention histograms --------------------------------------------------

#[test]
fn contention_histograms_are_monotone_under_concurrency() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let db = Arc::new(Database::new(DatabaseConfig {
        durability: Durability::Wal,
        ..Default::default()
    }));
    db.execute("CREATE TABLE c (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    let base_commits = db.metrics_snapshot().commit_lock_wait_us.count;
    let done = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let session = db.session();
                for i in 0..40 {
                    session
                        .execute(&format!("INSERT INTO c VALUES ({t}, {i})"))
                        .unwrap();
                }
            })
        })
        .collect();
    // Sample while the writers race: counts must only grow, and every
    // sample must be internally consistent (bucket sum == count).
    let sampler = {
        let db = Arc::clone(&db);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut last_commit = 0u64;
            let mut last_sync = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = db.metrics_snapshot();
                for h in [&snap.commit_lock_wait_us, &snap.wal_sync_wait_us] {
                    assert_eq!(
                        h.counts.iter().sum::<u64>(),
                        h.count,
                        "bucket sum diverged from count"
                    );
                }
                assert!(snap.commit_lock_wait_us.count >= last_commit);
                assert!(snap.wal_sync_wait_us.count >= last_sync);
                last_commit = snap.commit_lock_wait_us.count;
                last_sync = snap.wal_sync_wait_us.count;
                std::thread::yield_now();
            }
        })
    };
    for t in threads {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    sampler.join().unwrap();
    let snap = db.metrics_snapshot();
    // 160 write statements → at least 160 commit-lock acquisitions
    // (checkpoints, if any fired, take the lock too).
    assert!(snap.commit_lock_wait_us.count - base_commits >= 160);
    assert!(snap.wal_sync_wait_us.count > 0);
    // Coalesced syncs + real syncs are consistent: every sync_through
    // call was timed, coalesced or not.
    assert!(snap.wal_sync_wait_us.count >= snap.wal_coalesced_syncs);
}

#[test]
fn pool_histograms_record_miss_io() {
    // A pool far smaller than the table forces misses: every miss times
    // its read+verify I/O.
    let db = Database::new(DatabaseConfig {
        buffer_pages: 8,
        ..Default::default()
    });
    load_wisconsin(&db, "wisc", 2_000, 3).unwrap();
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let snap = db.metrics_snapshot();
    assert!(snap.pool_misses > 0, "tiny pool must miss");
    assert!(
        snap.pool_miss_io_us.count > 0,
        "misses happened but no miss I/O was timed"
    );
    // Every timed I/O corresponds to a physical read the pool did itself
    // (single-flight waiters don't read), so the histogram never
    // overcounts the miss counter.
    assert!(
        snap.pool_miss_io_us.count <= snap.pool_misses,
        "miss I/O histogram count {} above miss counter {}",
        snap.pool_miss_io_us.count,
        snap.pool_misses
    );
}

#[test]
fn snapshot_acquisition_is_timed() {
    let db = fixture();
    let before = db.metrics_snapshot().snapshot_acquire_us.count;
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    assert!(db.metrics_snapshot().snapshot_acquire_us.count > before);
}

#[test]
fn prometheus_covers_every_new_family() {
    let db = Database::new(DatabaseConfig {
        durability: Durability::Wal,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT NOT NULL)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.query("SELECT x FROM t").unwrap();
    let text = db.metrics_text();
    for needle in [
        "# TYPE evopt_statements_total counter",
        "# TYPE evopt_statement_errors_total counter",
        "# TYPE evopt_wal_coalesced_syncs_total counter",
        "# TYPE evopt_commit_lock_wait_us histogram",
        "# TYPE evopt_wal_sync_wait_us histogram",
        "# TYPE evopt_pool_miss_io_us histogram",
        "# TYPE evopt_pool_load_wait_us histogram",
        "# TYPE evopt_snapshot_acquire_us histogram",
        "evopt_commit_lock_wait_us_bucket{le=\"+Inf\"}",
        "evopt_wal_sync_wait_us_sum ",
        "evopt_pool_miss_io_us_count ",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // The write above acquired the commit lock once.
    assert!(db.metrics_snapshot().commit_lock_wait_us.count >= 1);
}

#[test]
fn session_scrape_labels_per_session_series() {
    let db = std::sync::Arc::new(fixture());
    let session = db.session();
    session.execute("SELECT COUNT(*) FROM wisc").unwrap();
    let text = session.metrics_text();
    let label = format!("session=\"{}\"", session.id());
    // Instance-wide families render bare; the session's own render labeled.
    assert!(text.contains("evopt_queries_total "), "{text}");
    assert!(
        text.contains(&format!("evopt_queries_total{{{label}}} 1")),
        "missing labeled session series in:\n{text}"
    );
    assert!(
        text.contains(&format!("evopt_statements_total{{{label}}} 1")),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "evopt_execute_time_us_bucket{{le=\"+Inf\",{label}}}"
        )),
        "{text}"
    );
}

#[test]
fn statement_counters_track_errors() {
    let db = fixture();
    let before = db.metrics_snapshot();
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    assert!(db.execute("SELECT nope FROM missing_table").is_err());
    let snap = db.metrics_snapshot();
    assert_eq!(snap.statements - before.statements, 2);
    assert_eq!(snap.statement_errors - before.statement_errors, 1);
}

#[test]
fn governor_kills_are_counted() {
    use evopt::{CancellationToken, GovernorConfig};
    let db = fixture();
    let before = db.metrics_snapshot().governor_kills;
    let governor = GovernorConfig {
        max_rows: Some(5),
        ..Default::default()
    };
    let (rows, _) = db.query_governed(
        "SELECT unique1 FROM wisc",
        governor,
        CancellationToken::new(),
    );
    assert!(rows.is_err());
    assert_eq!(db.metrics_snapshot().governor_kills, before + 1);
}
