//! Integration tests for the observability layer: the optimizer search
//! trace (`EXPLAIN TRACE`), the engine metrics registry, and the query log
//! (`SHOW QUERY LOG`).
//!
//! The load-bearing property is that observation never perturbs the
//! observed: tracing a query must not change the chosen plan or its
//! result, and metrics must be pure accounting.

use evopt::{Database, DatabaseConfig, QueryResult, Strategy, Tuple, Value};
use evopt_workload::tpch_lite::queries;
use evopt_workload::{load_tpch_lite, load_wisconsin};

/// Order-insensitive fingerprint of a result set.
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    keys.sort();
    keys
}

/// Wisconsin + TPC-H-lite + an empty table: the batch-equivalence fixture.
fn fixture() -> Database {
    let db = Database::with_defaults();
    load_wisconsin(&db, "wisc", 2500, 11).unwrap();
    db.execute("CREATE UNIQUE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    db.execute("CREATE TABLE empty_t (x INT, y STRING)")
        .unwrap();
    load_tpch_lite(&db, 0.2, 23).unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// The batch-equivalence SQL battery: one query per operator family plus
/// the edge cases (kept in sync with `tests/batch_equivalence.rs`).
fn query_battery() -> Vec<&'static str> {
    vec![
        "SELECT unique1, stringu1 FROM wisc",
        "SELECT unique1 * 2, ten_pct FROM wisc WHERE one_pct < 7",
        "SELECT * FROM wisc WHERE odd = 1 AND ten_pct BETWEEN 2 AND 5",
        "SELECT * FROM wisc WHERE unique1 < 0",
        "SELECT * FROM empty_t WHERE x > 0",
        "SELECT COUNT(*), SUM(x) FROM empty_t",
        "SELECT y, COUNT(*) FROM empty_t GROUP BY y",
        "SELECT * FROM empty_t ORDER BY x",
        "SELECT stringu1 FROM wisc WHERE unique1 = 1234",
        "SELECT unique1 FROM wisc WHERE unique1 BETWEEN 100 AND 300",
        "SELECT unique1 FROM wisc WHERE unique1 < 500 AND odd = 0",
        "SELECT unique2 FROM wisc LIMIT 7",
        "SELECT unique1 FROM wisc ORDER BY unique1 LIMIT 1500",
        "SELECT unique2 FROM wisc LIMIT 0",
        "SELECT unique1, stringu1 FROM wisc ORDER BY unique1",
        "SELECT one_pct, unique2 FROM wisc ORDER BY one_pct, unique2",
        "SELECT COUNT(*), SUM(unique1), MIN(unique1), MAX(unique1), AVG(ten_pct) FROM wisc",
        "SELECT ten_pct, COUNT(*) AS n, SUM(unique2) FROM wisc GROUP BY ten_pct ORDER BY ten_pct",
        "SELECT DISTINCT twenty_pct FROM wisc ORDER BY twenty_pct",
        queries::REVENUE_PER_NATION,
        queries::CUSTOMER_ORDERS,
        queries::SHIPPED_BIG_ORDERS,
    ]
}

/// Five chained tables for join-order enumeration tests. No GROUP BY in
/// the test queries: an aggregate's order-hint probe enumerates the join
/// subtree twice, which would make counters and memo size incomparable.
fn five_way_fixture() -> Database {
    let db = Database::with_defaults();
    for (i, rows) in [40i64, 200, 1000, 25, 500].iter().enumerate() {
        let t = format!("t{i}");
        db.execute(&format!("CREATE TABLE {t} (k INT NOT NULL, v INT)"))
            .unwrap();
        let tuples: Vec<Tuple> = (0..*rows)
            .map(|r| Tuple::new(vec![Value::Int(r % 40), Value::Int(r)]))
            .collect();
        db.insert_tuples(&t, &tuples).unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db
}

const FIVE_WAY_SQL: &str = "SELECT t0.v FROM t0 \
     JOIN t1 ON t0.k = t1.k \
     JOIN t2 ON t1.k = t2.k \
     JOIN t3 ON t2.k = t3.k \
     JOIN t4 ON t3.k = t4.k";

// -- EXPLAIN TRACE ----------------------------------------------------------

#[test]
fn explain_trace_renders_search_journal() {
    let db = five_way_fixture();
    let text = match db
        .execute(&format!("EXPLAIN TRACE {FIVE_WAY_SQL}"))
        .unwrap()
    {
        QueryResult::Explained(text) => text,
        other => panic!("{other:?}"),
    };
    assert!(text.contains("== logical =="), "{text}");
    assert!(text.contains("== physical (system-r) =="), "{text}");
    assert!(text.contains("== trace (system-r) =="), "{text}");
    assert!(text.contains("plans considered: "), "{text}");
    assert!(text.contains("pruned: "), "{text}");
    assert!(text.contains("retained: "), "{text}");
    assert!(text.contains("memo entries: "), "{text}");
    assert!(text.contains("enumeration time: "), "{text}");
    assert!(text.contains("level 1: table="), "{text}");
    assert!(text.contains("level 5: table="), "{text}");
    assert!(text.contains("+ consider"), "{text}");
    assert!(text.contains("- prune"), "{text}");
}

#[test]
fn explain_trace_composes_with_analyze() {
    let db = five_way_fixture();
    for sql in [
        format!("EXPLAIN TRACE ANALYZE {FIVE_WAY_SQL}"),
        format!("EXPLAIN ANALYZE TRACE {FIVE_WAY_SQL}"),
    ] {
        let text = match db.execute(&sql).unwrap() {
            QueryResult::Explained(text) => text,
            other => panic!("{other:?}"),
        };
        assert!(text.contains("== trace (system-r) =="), "{text}");
        assert!(text.contains("== measured =="), "{text}");
        assert!(text.contains("plan digest: "), "{text}");
    }
}

#[test]
fn five_way_join_trace_counts_are_consistent() {
    // The acceptance criterion: on a 5-way join, considered/pruned must be
    // consistent with the DP table — every plan routed into the dominance
    // table either survives in the memo or was pruned exactly once.
    let db = five_way_fixture();
    let traced = db.query_traced(FIVE_WAY_SQL).unwrap();
    let t = &traced.trace;
    assert!(t.considered > 0);
    assert!(t.memo_entries > 0);
    assert_eq!(
        t.considered,
        t.pruned + t.memo_entries as u64,
        "considered {} != pruned {} + memo {}",
        t.considered,
        t.pruned,
        t.memo_entries
    );
    assert_eq!(t.retained(), t.memo_entries as u64);
    // System R DP fills one level per join size: 1..=5.
    let levels: Vec<u32> = t.levels.iter().map(|l| l.level).collect();
    assert_eq!(levels, vec![1, 2, 3, 4, 5], "{levels:?}");
}

#[test]
fn dp_considers_strictly_more_plans_than_greedy() {
    let db = five_way_fixture();
    db.set_strategy(Strategy::SystemR);
    let dp = db.query_traced(FIVE_WAY_SQL).unwrap();
    db.set_strategy(Strategy::Greedy);
    let greedy = db.query_traced(FIVE_WAY_SQL).unwrap();
    assert!(
        dp.trace.considered > greedy.trace.considered,
        "dp_sysr considered {}, greedy {}",
        dp.trace.considered,
        greedy.trace.considered
    );
    // Both strategies still agree on the answer.
    assert_eq!(normalized(&dp.rows), normalized(&greedy.rows));
}

// -- trace overhead: observation never perturbs -----------------------------

#[test]
fn tracing_never_changes_plan_or_result() {
    // The differential acceptance test: across the whole batch-equivalence
    // battery, EXPLAIN TRACE / query_traced picks the same plan (by
    // digest) and returns the same rows as the plain path.
    let db = fixture();
    for sql in query_battery() {
        let plain_rows = db.query(sql).unwrap();
        let (_, plain_plan) = db.plan_sql(sql).unwrap();
        let traced = db.query_traced(sql).unwrap();
        assert_eq!(
            plain_plan.digest_hex(),
            traced.plan.digest_hex(),
            "tracing changed the chosen plan for {sql}"
        );
        assert_eq!(
            normalized(&plain_rows),
            normalized(&traced.rows),
            "tracing changed the result of {sql}"
        );
        // Single-table queries enumerate no join orders; every join query
        // must have recorded search work.
        if sql.contains("JOIN") {
            assert!(traced.trace.considered > 0, "no search recorded for {sql}");
        }
        // The rendered journal never panics and always carries the header.
        assert!(traced.trace.render().contains("plans considered: "));
    }
}

// -- SHOW QUERY LOG ---------------------------------------------------------

#[test]
fn show_query_log_returns_recent_queries() {
    let db = fixture();
    let battery = [
        "SELECT COUNT(*) FROM wisc",
        "SELECT unique2 FROM wisc LIMIT 7",
    ];
    for sql in battery {
        db.query(sql).unwrap();
    }
    let (schema, rows) = match db.execute("SHOW QUERY LOG").unwrap() {
        QueryResult::Rows { schema, rows, .. } => (schema, rows),
        other => panic!("{other:?}"),
    };
    let col = |name: &str| schema.resolve(None, name).unwrap();
    // Newest first; ANALYZE/DDL/SHOW don't enter the log.
    assert!(rows.len() >= battery.len());
    assert_eq!(
        rows[0].value(col("sql")).unwrap(),
        &Value::Str(battery[1].into())
    );
    assert_eq!(
        rows[1].value(col("sql")).unwrap(),
        &Value::Str(battery[0].into())
    );
    for row in &rows {
        // q-error is well-defined (≥ 1) for every entry.
        match row.value(col("q_error")).unwrap() {
            Value::Float(q) => assert!(*q >= 1.0, "q-error {q} < 1"),
            other => panic!("{other:?}"),
        }
        match row.value(col("plan_digest")).unwrap() {
            Value::Str(d) => assert_eq!(d.len(), 16, "digest {d:?}"),
            other => panic!("{other:?}"),
        }
    }
    // COUNT(*) estimates one output row exactly: q-error 1, LIMIT 7 got 7.
    assert_eq!(rows[1].value(col("actual_rows")).unwrap(), &Value::Int(1));
    assert_eq!(rows[0].value(col("actual_rows")).unwrap(), &Value::Int(7));
}

#[test]
fn slow_query_flagging_respects_threshold() {
    let db = fixture();
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let log = db.query_log().entries();
    assert!(!log[0].slow, "default 250ms threshold flagged a tiny query");
    // Threshold 0: everything is slow.
    db.set_slow_query_threshold_us(0);
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let log = db.query_log().entries();
    assert!(log[0].slow);
    assert!(db.metrics_snapshot().slow_queries >= 1);
}

#[test]
fn query_log_is_a_bounded_ring() {
    let db = Database::new(DatabaseConfig {
        query_log_cap: 4,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    for i in 0..10 {
        db.query(&format!("SELECT x FROM t WHERE x > {i}")).unwrap();
    }
    let entries = db.query_log().entries();
    assert_eq!(entries.len(), 4);
    // Newest first: the last query issued leads.
    assert_eq!(entries[0].sql, "SELECT x FROM t WHERE x > 9");
    assert_eq!(entries[3].sql, "SELECT x FROM t WHERE x > 6");
}

// -- metrics registry -------------------------------------------------------

#[test]
fn metrics_snapshot_counts_engine_activity() {
    let db = fixture();
    let before = db.metrics_snapshot();
    let n = 5u64;
    for _ in 0..n {
        // A join: exercises the enumerator so plans_considered moves.
        db.query(queries::CUSTOMER_ORDERS).unwrap();
    }
    let snap = db.metrics_snapshot();
    assert_eq!(snap.queries - before.queries, n);
    assert_eq!(snap.optimize_calls - before.optimize_calls, n);
    assert!(snap.plans_considered > before.plans_considered);
    assert!(snap.exec_rows > before.exec_rows);
    assert!(snap.exec_batches > before.exec_batches);
    assert_eq!(
        snap.optimize_time_us.count - before.optimize_time_us.count,
        n
    );
    assert_eq!(snap.execute_time_us.count - before.execute_time_us.count, n);
    // Storage section is live pool/disk state: the fixture load alone did
    // plenty of traffic.
    assert!(snap.pool_hits + snap.pool_misses > 0);
    assert!(snap.hit_rate() > 0.0 && snap.hit_rate() <= 1.0);
}

#[test]
fn metrics_text_is_prometheus_shaped() {
    let db = fixture();
    db.query("SELECT COUNT(*) FROM wisc").unwrap();
    let text = db.metrics_text();
    for needle in [
        "# TYPE evopt_queries_total counter",
        "evopt_pool_hits_total ",
        "evopt_plans_considered_total ",
        "evopt_exec_rows_total ",
        "evopt_optimize_time_us_bucket{le=\"+Inf\"}",
        "evopt_execute_time_us_sum ",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn metrics_disabled_is_inert() {
    let db = Database::new(DatabaseConfig {
        metrics: false,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.query("SELECT * FROM t").unwrap();
    let snap = db.metrics_snapshot();
    // Engine counters stay zero; the query log records nothing.
    assert_eq!(snap.queries, 0);
    assert_eq!(snap.optimize_calls, 0);
    assert_eq!(snap.exec_rows, 0);
    assert!(db.query_log().is_empty());
    // The storage section still reflects live pool state.
    assert!(snap.pool_hits + snap.pool_misses > 0);
}

#[test]
fn governor_kills_are_counted() {
    use evopt::{CancellationToken, GovernorConfig};
    let db = fixture();
    let before = db.metrics_snapshot().governor_kills;
    let governor = GovernorConfig {
        max_rows: Some(5),
        ..Default::default()
    };
    let (rows, _) = db.query_governed(
        "SELECT unique1 FROM wisc",
        governor,
        CancellationToken::new(),
    );
    assert!(rows.is_err());
    assert_eq!(db.metrics_snapshot().governor_kills, before + 1);
}
