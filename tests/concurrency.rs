//! Concurrency torture suite for the multi-session engine.
//!
//! The contract under concurrency:
//!
//! * **Write serializability.** Write statements hold the engine commit
//!   lock end-to-end, so any interleaving of threads whose writes commute
//!   (here: disjoint key ranges) must produce exactly the state a serial
//!   execution produces — verified by digest against a serial twin.
//! * **Acknowledged means durable.** With WAL durability on, a statement
//!   that returned `Ok` is recovered after a crash, group commit
//!   notwithstanding.
//! * **Snapshot reads.** A SELECT pins a frozen catalog snapshot at
//!   statement start: concurrent DDL and ANALYZE never change what a
//!   running statement sees, and a table dropped mid-flight never breaks
//!   an in-progress scan (heap pages are not reused).
//! * **Kills stay scoped.** Governor kills in one session never poison
//!   another session or the engine.
//!
//! Seeded via `EVOPT_SEED` (CI sweeps several) — every run is
//! deterministic per thread; only the thread interleaving varies.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use evopt::{
    CancellationToken, Database, DatabaseConfig, DiskBackend, DiskManager, Durability,
    GovernorConfig, Strategy,
};
use evopt_common::EvoptError;

fn seed() -> u64 {
    std::env::var("EVOPT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Deterministic per-thread operation stream (xorshift64*).
struct Rng(u64);

impl Rng {
    fn new(seed: u64, thread: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (thread + 1).wrapping_mul(0xd1342543de82ef95))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The mixed workload one thread runs: statements against its own disjoint
/// key range `[base, base + SPAN)`, so writes across threads commute.
fn thread_ops(seed: u64, thread: u64, ops: usize) -> Vec<String> {
    const SPAN: u64 = 200;
    let base = thread * 1_000;
    let mut rng = Rng::new(seed, thread);
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let k = base + rng.below(SPAN);
        match rng.below(10) {
            0..=4 => out.push(format!(
                "INSERT INTO conc VALUES ({k}, {})",
                rng.below(1000)
            )),
            5..=6 => out.push(format!(
                "UPDATE conc SET v = v + {} WHERE k = {k}",
                1 + rng.below(9)
            )),
            7 => out.push(format!("DELETE FROM conc WHERE k = {k}")),
            _ => out.push(format!(
                "SELECT COUNT(*) FROM conc WHERE k >= {base} AND k < {}",
                base + SPAN
            )),
        }
    }
    out
}

/// Order-insensitive digest of a table's full contents.
fn digest(db: &Database, table: &str) -> Vec<String> {
    let mut rows: Vec<String> = db
        .query(&format!("SELECT k, v FROM {table}"))
        .unwrap()
        .iter()
        .map(|t| format!("{t:?}"))
        .collect();
    rows.sort();
    rows
}

fn durable_config() -> DatabaseConfig {
    DatabaseConfig {
        durability: Durability::Wal,
        ..Default::default()
    }
}

#[test]
fn mixed_workload_matches_serial_twin() {
    const THREADS: u64 = 4;
    const OPS: usize = 120;
    let s = seed();

    // Concurrent run: one session per thread, all ops racing.
    let db = Arc::new(Database::new(durable_config()));
    db.execute("CREATE TABLE conc (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let session = db.session();
                for sql in thread_ops(s, t, OPS) {
                    // Reads may race page-level writes; they must never
                    // error. Writes are serialized and must succeed.
                    session.execute(&sql).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let concurrent = digest(&db, "conc");

    // Serial twin: same per-thread statement sequences, one thread at a
    // time. Disjoint key ranges make cross-thread order irrelevant.
    let twin = Database::new(durable_config());
    twin.execute("CREATE TABLE conc (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    for t in 0..THREADS {
        for sql in thread_ops(s, t, OPS) {
            twin.execute(&sql).unwrap();
        }
    }
    assert_eq!(concurrent, digest(&twin, "conc"));

    // Group commit actually engaged: every write committed durably.
    let stats = db.wal().unwrap().stats();
    assert!(stats.records_written > 0);
}

#[test]
fn acknowledged_writes_survive_a_crash_during_concurrency() {
    const THREADS: u64 = 4;
    const ROWS_PER_THREAD: u64 = 60;
    let disk: Arc<dyn DiskBackend> = Arc::new(DiskManager::new());
    let cfg = durable_config();
    let db = Arc::new(Database::create_on(Arc::clone(&disk), cfg).unwrap());
    db.execute("CREATE TABLE acked (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();

    // Each thread inserts its own keys, recording every acknowledged key.
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let session = db.session();
                let mut acked = Vec::new();
                for i in 0..ROWS_PER_THREAD {
                    let k = t * 10_000 + i;
                    if session
                        .execute(&format!("INSERT INTO acked VALUES ({k}, {t})"))
                        .is_ok()
                    {
                        acked.push(k);
                    }
                }
                acked
            })
        })
        .collect();
    let mut acked = Vec::new();
    for t in threads {
        acked.extend(t.join().unwrap());
    }

    // Crash: drop the database without flushing the pool.
    drop(db);
    let (db2, info) = Database::recover(disk, cfg).unwrap();
    assert!(info.replayed_records > 0);
    let recovered: std::collections::HashSet<i64> = db2
        .query("SELECT k FROM acked")
        .unwrap()
        .iter()
        .map(|r| r.value(0).unwrap().as_i64().unwrap())
        .collect();
    for k in &acked {
        assert!(
            recovered.contains(&(*k as i64)),
            "acknowledged key {k} lost by recovery"
        );
    }
}

#[test]
fn snapshot_reads_are_stable_under_concurrent_ddl_and_analyze() {
    let db = Arc::new(Database::with_defaults());
    db.execute("CREATE TABLE stable (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    for chunk in 0..10 {
        let values: Vec<String> = (0..100)
            .map(|i| format!("({}, {})", chunk * 100 + i, i % 7))
            .collect();
        db.execute(&format!("INSERT INTO stable VALUES {}", values.join(", ")))
            .unwrap();
    }
    db.execute("ANALYZE stable").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    // Churn thread: DDL on *other* tables plus repeated ANALYZE of the
    // table being read — catalog version churns constantly.
    let churn = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let session = db.session();
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                session
                    .execute(&format!("CREATE TABLE churn_{i} (x INT)"))
                    .unwrap();
                session.execute("ANALYZE stable").unwrap();
                session.execute(&format!("DROP TABLE churn_{i}")).unwrap();
                i += 1;
            }
        })
    };
    // Reader threads: exact answers, every time, against the churn.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let session = db.session();
                let mut n = 0;
                while !stop.load(Ordering::Relaxed) && n < 60 {
                    let rows = session.query("SELECT COUNT(*) FROM stable").unwrap();
                    assert_eq!(rows[0].value(0).unwrap().as_i64().unwrap(), 1000);
                    let rows = session
                        .query("SELECT COUNT(*) FROM stable WHERE v = 3")
                        .unwrap();
                    assert!(rows[0].value(0).unwrap().as_i64().unwrap() > 0);
                    n += 1;
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
}

#[test]
fn table_dropped_mid_flight_does_not_break_running_scans() {
    let db = Arc::new(Database::with_defaults());
    db.execute("CREATE TABLE victim (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    for chunk in 0..20 {
        let values: Vec<String> = (0..100)
            .map(|i| format!("({}, {i})", chunk * 100 + i))
            .collect();
        db.execute(&format!("INSERT INTO victim VALUES {}", values.join(", ")))
            .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let session = db.session();
            let mut successes = 0u32;
            while !stop.load(Ordering::Relaxed) {
                // Either the snapshot still names the table (full, correct
                // answer) or binding fails cleanly with unknown-table.
                match session.query("SELECT COUNT(*) FROM victim") {
                    Ok(rows) => {
                        assert_eq!(rows[0].value(0).unwrap().as_i64().unwrap(), 2000);
                        successes += 1;
                    }
                    Err(e) => assert!(
                        e.message().contains("victim"),
                        "unexpected failure mode: {e}"
                    ),
                }
            }
            successes
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(20));
    db.execute("DROP TABLE victim").unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let successes = reader.join().unwrap();
    assert!(successes > 0, "reader never observed the table");
}

#[test]
fn governor_kills_stay_scoped_to_their_session() {
    let db = Arc::new(Database::with_defaults());
    db.execute("CREATE TABLE big (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    for chunk in 0..20 {
        let values: Vec<String> = (0..250)
            .map(|i| format!("({}, {i})", chunk * 250 + i))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
            .unwrap();
    }
    db.execute("ANALYZE").unwrap();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let session = db.session();
                if t % 2 == 0 {
                    // Strangled session: a 1-row budget kills every scan.
                    session.set_governor(GovernorConfig {
                        max_rows: Some(1),
                        ..Default::default()
                    });
                    for _ in 0..20 {
                        let (rows, _) =
                            session.query_governed("SELECT * FROM big", CancellationToken::new());
                        match rows {
                            Err(EvoptError::ResourceExhausted(_)) => {}
                            other => panic!("expected a kill, got {other:?}"),
                        }
                    }
                } else {
                    // Healthy session: full answers throughout.
                    for _ in 0..20 {
                        let rows = session.query("SELECT COUNT(*) FROM big").unwrap();
                        assert_eq!(rows[0].value(0).unwrap().as_i64().unwrap(), 5000);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // The engine is healthy afterwards; kills were counted.
    assert_eq!(
        db.query("SELECT COUNT(*) FROM big").unwrap()[0]
            .value(0)
            .unwrap()
            .as_i64()
            .unwrap(),
        5000
    );
    assert!(db.metrics_snapshot().governor_kills >= 40);
}

#[test]
fn session_config_is_isolated() {
    let db = Arc::new(Database::with_defaults());
    db.execute("CREATE TABLE t (a INT NOT NULL, b INT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    let a = db.session();
    let b = db.session();
    a.set_strategy(Strategy::Greedy);
    a.set_batch_rows(1);
    // b and the database defaults are untouched.
    assert_eq!(b.config().optimizer.strategy.name(), "system-r");
    assert_eq!(db.optimizer_config().strategy.name(), "system-r");
    assert_eq!(a.config().optimizer.strategy.name(), "greedy");
    // Both sessions still answer correctly.
    assert_eq!(a.query("SELECT COUNT(*) FROM t").unwrap().len(), 1);
    assert_eq!(b.query("SELECT COUNT(*) FROM t").unwrap().len(), 1);
    // Per-session metrics saw exactly this session's queries.
    assert_eq!(a.metrics_snapshot().queries, 1);
    assert_eq!(b.metrics_snapshot().queries, 1);
}

#[test]
fn group_commit_coalesces_concurrent_syncs() {
    const THREADS: u64 = 8;
    let db = Arc::new(Database::new(durable_config()));
    db.execute("CREATE TABLE gc (k INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let session = db.session();
                for i in 0..40 {
                    session
                        .execute(&format!("INSERT INTO gc VALUES ({}, {i})", t * 1000 + i))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        db.query("SELECT COUNT(*) FROM gc").unwrap()[0]
            .value(0)
            .unwrap()
            .as_i64()
            .unwrap(),
        (THREADS * 40) as i64
    );
    // Not asserted > 0 strictly (scheduling-dependent), but report it so a
    // regression to zero under load shows up in CI logs.
    let stats = db.wal().unwrap().stats();
    println!(
        "group commit: {} records, {} coalesced syncs",
        stats.records_written, stats.coalesced_syncs
    );
}
