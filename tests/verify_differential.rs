//! Differential suite for static plan verification.
//!
//! Verification must be a pure observer: turning `verify_plans` on may
//! reject a malformed plan, but for every *well-formed* query it must
//! change neither the chosen plan (digest) nor the result rows. Two
//! identically seeded databases — one verifying, one not — run the same
//! battery; any divergence is a verifier bug. The five forced join
//! families are additionally pushed through the verifier directly, pinning
//! the rule set to every join method the executor implements. In debug
//! builds both databases verify unconditionally (the hooks are
//! `debug_assert`-style); in release builds — CI runs this suite both
//! ways — the pair is a genuine on/off differential.

use std::sync::Arc;

use evopt::{Database, DatabaseConfig, Tuple};
use evopt_catalog::{analyze_table, AnalyzeConfig, Catalog};
use evopt_common::expr::col;
use evopt_common::{Column, DataType, Expr, Schema, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{PhysOp, PhysicalPlan};
use evopt_core::verify::{verify_physical, VerifyPhase};
use evopt_core::Strategy;
use evopt_storage::{BufferPool, DiskManager, PolicyKind};
use evopt_workload::tpch_lite::queries;
use evopt_workload::{load_tpch_lite, load_wisconsin};

fn seeded(verify_plans: bool) -> Database {
    let db = Database::new(DatabaseConfig {
        verify_plans,
        ..DatabaseConfig::default()
    });
    load_wisconsin(&db, "wisc", 1200, 11).unwrap();
    db.execute("CREATE UNIQUE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    db.execute("CREATE TABLE empty_t (x INT, y STRING)")
        .unwrap();
    load_tpch_lite(&db, 0.1, 23).unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// The battery: one query per operator family plus multi-join pipelines —
/// the same shapes the batch-equivalence suite pins.
fn battery() -> Vec<&'static str> {
    vec![
        "SELECT unique1, stringu1 FROM wisc",
        "SELECT unique1 * 2, ten_pct FROM wisc WHERE one_pct < 7",
        "SELECT * FROM wisc WHERE odd = 1 AND ten_pct BETWEEN 2 AND 5",
        "SELECT * FROM wisc WHERE unique1 < 0",
        "SELECT COUNT(*), SUM(x) FROM empty_t",
        "SELECT y, COUNT(*) FROM empty_t GROUP BY y",
        "SELECT stringu1 FROM wisc WHERE unique1 = 234",
        "SELECT unique1 FROM wisc WHERE unique1 BETWEEN 100 AND 300",
        "SELECT unique2 FROM wisc LIMIT 7",
        "SELECT unique1, stringu1 FROM wisc ORDER BY unique1",
        "SELECT ten_pct, COUNT(*) AS n, SUM(unique2) FROM wisc GROUP BY ten_pct ORDER BY ten_pct",
        "SELECT DISTINCT twenty_pct FROM wisc ORDER BY twenty_pct",
        queries::REVENUE_PER_NATION,
        queries::CUSTOMER_ORDERS,
        queries::SHIPPED_BIG_ORDERS,
    ]
}

/// Run an EXPLAIN-family statement and return its text.
fn explain(db: &Database, sql: &str) -> String {
    match db.execute(sql).unwrap() {
        evopt::QueryResult::Explained(text) => text,
        other => panic!("{sql}: expected Explained, got {other:?}"),
    }
}

fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    keys.sort();
    keys
}

/// The headline differential: same digests, same rows, verification on or
/// off, across every enumeration strategy.
#[test]
fn verification_changes_no_digest_and_no_result() {
    let on = seeded(true);
    let off = seeded(false);
    for strategy in [Strategy::SystemR, Strategy::Greedy, Strategy::Syntactic] {
        on.set_strategy(strategy);
        off.set_strategy(strategy);
        for sql in battery() {
            let (_, plan_on) = on.plan_sql(sql).unwrap();
            let (_, plan_off) = off.plan_sql(sql).unwrap();
            assert_eq!(
                plan_on.digest_hex(),
                plan_off.digest_hex(),
                "{:?}: verify_plans changed the plan for {sql}",
                strategy
            );
            let rows_on = on.query(sql).unwrap();
            let rows_off = off.query(sql).unwrap();
            assert_eq!(
                normalized(&rows_on),
                normalized(&rows_off),
                "{:?}: verify_plans changed the result of {sql}",
                strategy
            );
        }
    }
}

/// `EXPLAIN VERIFY` reports, composes with ANALYZE/TRACE, and leaves the
/// plain EXPLAIN text untouched.
#[test]
fn explain_verify_reports_and_composes() {
    let db = seeded(true);
    let text = explain(
        &db,
        "EXPLAIN VERIFY SELECT unique1 FROM wisc WHERE unique1 < 10",
    );
    assert!(text.contains("== verify =="), "{text}");
    assert!(text.contains("post-bind: ok"), "{text}");
    assert!(text.contains("post-physical: ok"), "{text}");
    assert!(text.contains("lints: none"), "{text}");

    let plain = explain(&db, "EXPLAIN SELECT unique1 FROM wisc WHERE unique1 < 10");
    assert!(!plain.contains("== verify =="), "{plain}");

    // Composition in any keyword order, alongside measured output.
    let combo = explain(&db, "EXPLAIN ANALYZE VERIFY SELECT COUNT(*) FROM wisc");
    assert!(combo.contains("== verify =="), "{combo}");
    assert!(combo.contains("== measured =="), "{combo}");
}

/// Lints surface through `EXPLAIN VERIFY` and land in the metrics
/// registry.
#[test]
fn lints_are_reported_and_counted() {
    let db = seeded(true);
    let before = db.metrics_snapshot();
    let text = explain(
        &db,
        "EXPLAIN VERIFY SELECT unique1 FROM wisc WHERE unique1 > 5 AND unique1 < 3",
    );
    assert!(text.contains("[contradiction]"), "{text}");
    let after = db.metrics_snapshot();
    assert!(
        after.lints_flagged > before.lints_flagged,
        "lints_flagged did not move: {} -> {}",
        before.lints_flagged,
        after.lints_flagged
    );
    assert!(after.plans_verified > before.plans_verified);
    // The contradictory query is suspicious, not invalid: no failures.
    assert_eq!(after.verify_failures, before.verify_failures);

    let cross = explain(&db, "EXPLAIN VERIFY SELECT * FROM wisc, empty_t LIMIT 1");
    assert!(cross.contains("[cross-product]"), "{cross}");
}

/// Every optimizer-chosen plan for the battery passes the verifier with
/// the catalog attached — the "run it across the golden battery" check
/// from the issue, as a pinned regression.
#[test]
fn battery_plans_verify_clean() {
    let db = seeded(false);
    for strategy in [
        Strategy::SystemR,
        Strategy::BushyDp,
        Strategy::DpCcp,
        Strategy::Greedy,
        Strategy::Goo,
        Strategy::QuickPick {
            samples: 32,
            seed: 7,
        },
        Strategy::Syntactic,
    ] {
        db.set_strategy(strategy);
        for sql in battery() {
            let (_, plan) = db.plan_sql(sql).unwrap();
            let report = verify_physical(&plan, Some(db.catalog()), VerifyPhase::PostPhysical);
            assert!(report.ok(), "{strategy:?} {sql}: {:?}", report.issues);
        }
    }
}

// -- forced join families ---------------------------------------------------

fn join_world() -> (Arc<Catalog>, Schema) {
    let disk = Arc::new(DiskManager::new());
    let pool = BufferPool::new(disk, 64, PolicyKind::Lru);
    let cat = Arc::new(Catalog::new(pool));
    let l = cat
        .create_table(
            "l",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("tag", DataType::Str),
            ]),
        )
        .unwrap();
    let r = cat
        .create_table(
            "r",
            Schema::new(vec![
                Column::new("b", DataType::Int),
                Column::new("payload", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..40i64 {
        l.heap
            .insert(&Tuple::new(vec![
                Value::Int(i % 10),
                Value::Str(format!("L{i}")),
            ]))
            .unwrap();
        r.heap
            .insert(&Tuple::new(vec![Value::Int(i % 10), Value::Int(i * 100)]))
            .unwrap();
    }
    cat.create_index("r_b", "r", "b", false, false).unwrap();
    // create_index clone-and-swaps r's TableInfo (CoW catalog): re-fetch
    // so the stats land on the registered entry, not a stale snapshot.
    let r = cat.table("r").unwrap();
    analyze_table(&l, &AnalyzeConfig::default()).unwrap();
    analyze_table(&r, &AnalyzeConfig::default()).unwrap();
    let schema = l.schema.join(&r.schema);
    (cat, schema)
}

fn mk(op: PhysOp, schema: Schema, rows: f64, cost: Cost) -> PhysicalPlan {
    PhysicalPlan {
        op,
        schema,
        est_rows: rows,
        est_cost: cost,
        output_order: None,
    }
}

fn scan(cat: &Catalog, t: &str) -> PhysicalPlan {
    let schema = cat.table(t).unwrap().schema.clone();
    mk(
        PhysOp::SeqScan {
            table: t.into(),
            filter: None,
        },
        schema,
        40.0,
        Cost::new(1.0, 40.0),
    )
}

fn sorted(cat: &Catalog, t: &str) -> PhysicalPlan {
    let s = scan(cat, t);
    let schema = s.schema.clone();
    mk(
        PhysOp::Sort {
            input: Box::new(s),
            keys: vec![(0, true)],
        },
        schema,
        40.0,
        Cost::new(1.0, 120.0),
    )
}

/// All five join families, built as valid plans, must verify clean with
/// the catalog attached.
#[test]
fn forced_join_families_verify_clean() {
    let (cat, schema) = join_world();
    let pred = Some(Expr::eq(col(0), col(2)));
    let join_cost = Cost::new(4.0, 2_000.0);
    let families: Vec<(&str, PhysicalPlan)> = vec![
        (
            "NestedLoopJoin",
            mk(
                PhysOp::NestedLoopJoin {
                    left: Box::new(scan(&cat, "l")),
                    right: Box::new(scan(&cat, "r")),
                    predicate: pred.clone(),
                },
                schema.clone(),
                160.0,
                join_cost,
            ),
        ),
        (
            "BlockNestedLoopJoin",
            mk(
                PhysOp::BlockNestedLoopJoin {
                    left: Box::new(scan(&cat, "l")),
                    right: Box::new(scan(&cat, "r")),
                    predicate: pred,
                    block_pages: 4,
                },
                schema.clone(),
                160.0,
                join_cost,
            ),
        ),
        (
            "IndexNestedLoopJoin",
            mk(
                PhysOp::IndexNestedLoopJoin {
                    outer: Box::new(scan(&cat, "l")),
                    inner_table: "r".into(),
                    index: "r_b".into(),
                    outer_key: 0,
                    residual: None,
                },
                schema.clone(),
                160.0,
                join_cost,
            ),
        ),
        (
            "SortMergeJoin",
            mk(
                PhysOp::SortMergeJoin {
                    left: Box::new(sorted(&cat, "l")),
                    right: Box::new(sorted(&cat, "r")),
                    left_key: 0,
                    right_key: 0,
                    residual: None,
                },
                schema.clone(),
                160.0,
                join_cost,
            ),
        ),
        (
            "HashJoin",
            mk(
                PhysOp::HashJoin {
                    left: Box::new(scan(&cat, "l")),
                    right: Box::new(scan(&cat, "r")),
                    left_key: 0,
                    right_key: 0,
                    residual: None,
                },
                schema,
                160.0,
                join_cost,
            ),
        ),
    ];
    for (name, plan) in families {
        let report = verify_physical(&plan, Some(&cat), VerifyPhase::PostPhysical);
        assert!(report.ok(), "{name}: {:?}", report.issues);
    }
}
