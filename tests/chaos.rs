//! Chaos suite (experiment R1): whole-stack fault injection.
//!
//! Each scenario loads a workload cleanly, then unleashes a deterministic,
//! seed-driven fault schedule (transient I/O errors, torn writes, bit
//! flips) on the simulated disk and re-runs real queries. The contract
//! under fire:
//!
//! 1. **No panics, ever.** Any panic anywhere in the stack fails the test.
//! 2. **Correct or typed.** Every query either returns exactly the
//!    fault-free answer or fails with a fault-class error
//!    (`is_fault()`): `Io`, `Corruption`, `Storage`, ...
//! 3. **Counters stay consistent.** Pool and disk accounting never
//!    contradict each other, faults included.
//!
//! Seeds: `CHAOS_SEED=<n>` pins one seed (the CI matrix runs 1, 2, 3);
//! without it every default seed runs in-process.

use evopt::{Database, DatabaseConfig, Durability, FaultConfig, Tuple};
use evopt_workload::{load_tpch_lite, load_wisconsin};

/// Seeds to exercise: the CHAOS_SEED env var pins one (CI matrix), default
/// is all three.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be an integer, got '{s}'"))],
        Err(_) => vec![1, 2, 3],
    }
}

/// A database with the chaos fault schedule installed but *disabled*, plus
/// a fault-free twin for ground truth. Both small-pooled so queries do real
/// I/O.
fn twin_dbs(seed: u64) -> (Database, Database) {
    let faulty = Database::new(DatabaseConfig {
        buffer_pages: 32,
        faults: Some(FaultConfig::chaos(seed)),
        ..Default::default()
    });
    faulty
        .fault_injector()
        .expect("built with faults")
        .set_enabled(false);
    let clean = Database::new(DatabaseConfig {
        buffer_pages: 32,
        ..Default::default()
    });
    (faulty, clean)
}

fn load_both(faulty: &Database, clean: &Database, seed: u64) {
    for db in [faulty, clean] {
        load_wisconsin(db, "wisc", 2000, seed).unwrap();
        db.execute("CREATE INDEX wisc_u1 ON wisc (unique1)")
            .unwrap();
        load_tpch_lite(db, 0.25, seed).unwrap();
        db.execute("ANALYZE").unwrap();
    }
}

/// Deterministic queries (ORDER BY throughout) spanning scans, index
/// lookups, sorts, aggregation, and multi-table joins — enough operator
/// diversity that spills and evictions happen in a 32-page pool.
const QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM wisc",
    "SELECT unique1, stringu1 FROM wisc WHERE unique1 < 40 ORDER BY unique1",
    "SELECT one_pct, COUNT(*) AS n FROM wisc GROUP BY one_pct ORDER BY one_pct",
    "SELECT ten_pct, MIN(unique2) AS lo, MAX(unique2) AS hi FROM wisc \
     GROUP BY ten_pct ORDER BY ten_pct",
    "SELECT COUNT(*) FROM orders o JOIN customer c ON o.o_customer = c.c_key",
    "SELECT c.c_nation, COUNT(*) AS n FROM orders o \
     JOIN customer c ON o.o_customer = c.c_key \
     GROUP BY c.c_nation ORDER BY n DESC, c.c_nation",
    "SELECT unique2 FROM wisc WHERE odd = 1 ORDER BY unique2 DESC",
];

/// The core chaos scenario for one seed.
fn run_chaos(seed: u64) {
    let (faulty, clean) = twin_dbs(seed);
    load_both(&faulty, &clean, seed);

    // Ground truth, computed fault-free.
    let expected: Vec<Vec<Tuple>> = QUERIES.iter().map(|q| clean.query(q).unwrap()).collect();

    let injector = faulty.fault_injector().unwrap().clone();
    let pool_before = faulty.pool().stats();
    let io_before = faulty.disk().snapshot();
    injector.set_enabled(true);

    let mut ok = 0u32;
    let mut typed_failures = 0u32;
    // Several rounds so the random schedule hits different pages/ops.
    for round in 0..6 {
        for (q, want) in QUERIES.iter().zip(&expected) {
            match faulty.query(q) {
                Ok(rows) => {
                    assert_eq!(
                        &rows, want,
                        "seed {seed} round {round}: wrong answer under faults for {q}"
                    );
                    ok += 1;
                }
                Err(e) => {
                    assert!(
                        e.is_fault(),
                        "seed {seed} round {round}: non-fault error {e:?} ({}) for {q}",
                        e.kind()
                    );
                    typed_failures += 1;
                }
            }
        }
    }
    injector.set_enabled(false);

    // The schedule actually fired.
    let report = injector.report();
    assert!(
        report.total() > 0,
        "seed {seed}: chaos schedule injected no faults in {} queries",
        ok + typed_failures
    );

    // Counter consistency across the storm. Every successful pool miss did
    // at least one physical read; fault-path fetches that failed clean did
    // not inflate the miss count past the reads that served them.
    let pool_delta = faulty.pool().stats().since(&pool_before);
    let io_delta = faulty.disk().snapshot().since(&io_before);
    assert!(
        io_delta.reads >= pool_delta.misses,
        "seed {seed}: {} pool misses but only {} physical reads",
        pool_delta.misses,
        io_delta.reads
    );
    assert_eq!(
        io_delta.read_faults + io_delta.write_faults,
        report.total(),
        "seed {seed}: disk snapshot and injector report disagree on fault count"
    );

    // The engine survives: with faults off again, every query answers
    // correctly unless it needs a page the schedule already corrupted on
    // disk (those must keep failing typed, never silently wrong).
    for (q, want) in QUERIES.iter().zip(&expected) {
        match faulty.query(q) {
            Ok(rows) => assert_eq!(&rows, want, "seed {seed}: wrong post-chaos answer for {q}"),
            Err(e) => assert!(
                e.is_fault(),
                "seed {seed}: non-fault post-chaos error {e:?} for {q}"
            ),
        }
    }
}

#[test]
fn chaos_wisconsin_tpch_survives_fault_storm() {
    for seed in chaos_seeds() {
        run_chaos(seed);
    }
}

/// Acceptance: 100% of injected silent corruptions (torn writes, bit
/// flips) are caught by page checksums — a corrupted page can only produce
/// `Corruption`, never wrong bytes.
#[test]
fn checksums_catch_every_injected_corruption() {
    for seed in chaos_seeds() {
        let (faulty, _clean) = twin_dbs(seed);
        load_wisconsin(&faulty, "wisc", 1500, seed).unwrap();
        faulty.execute("ANALYZE").unwrap();

        let pool = faulty.pool().clone();
        // Persist everything (stamping checksums), then empty the pool so
        // the next fetch must hit the corrupted disk image.
        pool.evict_all().unwrap();

        let injector = faulty.fault_injector().unwrap();
        let total_pages = faulty.disk().page_count();
        assert!(total_pages > 8, "expected a multi-page database");
        // Corrupt a deterministic sample: torn writes on even picks, bit
        // flips on odd ones.
        let victims: Vec<u64> = (0..total_pages).step_by(3).collect();
        for (i, &page) in victims.iter().enumerate() {
            if i % 2 == 0 {
                injector.force_torn_write(page).unwrap();
            } else {
                injector.force_bit_flip(page).unwrap();
            }
        }

        let mut caught = 0usize;
        for &page in &victims {
            match pool.fetch(page) {
                Err(e) => {
                    assert_eq!(
                        e.kind(),
                        "corruption",
                        "seed {seed}: page {page} failed with {e:?}, want Corruption"
                    );
                    caught += 1;
                }
                Ok(_) => panic!(
                    "seed {seed}: page {page} was corrupted on disk but fetch returned bytes"
                ),
            }
        }
        assert_eq!(
            caught,
            victims.len(),
            "seed {seed}: checksum catch rate below 100%"
        );
        assert!(
            pool.stats().corruptions >= victims.len() as u64,
            "seed {seed}: pool corruption counter did not track the catches"
        );
    }
}

/// Transient read faults (no on-disk damage) heal via the pool's bounded
/// retry: queries keep succeeding with correct answers, and the retry
/// counter shows the faults were absorbed rather than never injected.
#[test]
fn transient_faults_are_absorbed_by_retry() {
    let seed = chaos_seeds()[0];
    // Transient faults only — nothing persists on disk, so every fault
    // must heal within the pool's bounded retry.
    let faulty = Database::new(DatabaseConfig {
        buffer_pages: 16,
        faults: Some(FaultConfig {
            seed,
            read_error: 0.20,
            write_error: 0.10,
            bit_flip_read: 0.10,
            ..FaultConfig::default()
        }),
        ..Default::default()
    });
    let injector = faulty.fault_injector().unwrap().clone();
    injector.set_enabled(false);
    load_wisconsin(&faulty, "wisc", 1200, seed).unwrap();
    faulty.execute("ANALYZE").unwrap();
    let want = faulty.query("SELECT COUNT(*) FROM wisc").unwrap();

    injector.set_enabled(true);
    for _ in 0..5 {
        // Force physical re-reads each round.
        faulty.pool().evict_all().unwrap();
        let got = faulty
            .query("SELECT COUNT(*) FROM wisc")
            .expect("transient faults must heal via bounded retry");
        assert_eq!(got, want);
    }
    injector.set_enabled(false);
    assert!(
        faulty.pool().stats().retries > 0,
        "retry counter never moved — schedule injected nothing"
    );
    assert_eq!(
        faulty.pool().stats().corruptions,
        0,
        "transient-only schedule must not corrupt"
    );
}

/// Fault storm on the *durability* path: a WAL-backed database under
/// transient read/write/sync faults. Contract: every statement is correct
/// or fails typed, and recovery afterwards yields a row count bounded by
/// the acknowledged and the attempted writes — never more, never fewer
/// than was acknowledged durable.
#[test]
fn wal_path_survives_fault_storm() {
    for seed in chaos_seeds() {
        // Transient-only schedule (no torn writes / bit flips): the disk
        // image itself stays honest, so recovery must always succeed; the
        // faults exercise the WAL's retry, poison, and re-queue paths.
        let cfg = DatabaseConfig {
            buffer_pages: 32,
            durability: Durability::Wal,
            faults: Some(FaultConfig {
                seed,
                read_error: 0.05,
                write_error: 0.10,
                sync_error: 0.15,
                ..FaultConfig::default()
            }),
            ..Default::default()
        };
        let db = Database::create_on(
            std::sync::Arc::new(evopt::DiskManager::new())
                as std::sync::Arc<dyn evopt::DiskBackend>,
            cfg,
        )
        .expect("bootstrap runs with injection suspended");
        let injector = db.fault_injector().expect("built with faults").clone();
        injector.set_enabled(false);
        db.execute("CREATE TABLE kv (k INT NOT NULL, v INT)")
            .unwrap();

        injector.set_enabled(true);
        let (mut acked_rows, mut attempted_rows) = (0u64, 0u64);
        for i in 0..40i64 {
            let base = i * 5;
            let rows: Vec<String> = (base..base + 5)
                .map(|k| format!("({k}, {})", k * 7))
                .collect();
            let sql = format!("INSERT INTO kv VALUES {}", rows.join(", "));
            attempted_rows += 5;
            match db.execute(&sql) {
                Ok(_) => acked_rows += 5,
                Err(e) => assert!(
                    e.is_fault(),
                    "seed {seed}: statement {i} failed non-typed: {e:?} ({})",
                    e.kind()
                ),
            }
        }
        injector.set_enabled(false);
        assert!(
            injector.report().total() > 0 || db.disk().snapshot().write_faults > 0,
            "seed {seed}: the storm never fired"
        );

        // Recover over the *inner* (healed) disk: everything acknowledged
        // must be there; a statement that failed only at its commit fence
        // may additionally have ridden into a later successful commit.
        let inner = injector.inner().clone();
        drop(db);
        let (db, _info) = Database::recover(
            inner,
            DatabaseConfig {
                buffer_pages: 32,
                durability: Durability::Wal,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: recovery after a transient storm failed: {e}"));
        let rows = db.query("SELECT COUNT(*) FROM kv").unwrap();
        let count = match &rows[0].values()[0] {
            evopt::Value::Int(n) => *n as u64,
            other => panic!("COUNT(*) returned {other:?}"),
        };
        assert!(
            (acked_rows..=attempted_rows).contains(&count),
            "seed {seed}: recovered {count} rows, acknowledged {acked_rows}, attempted {attempted_rows}"
        );
    }
}

/// `IoSnapshot::since` called with a misordered pair (the classic bug: an
/// "earlier" snapshot taken *before* a `reset_stats`) has defined behavior
/// in both profiles: debug builds assert, release builds saturate to zero
/// instead of underflowing into garbage deltas.
#[test]
fn io_snapshot_since_misuse_is_defined() {
    let db = Database::new(DatabaseConfig {
        buffer_pages: 16,
        ..Default::default()
    });
    db.execute("CREATE TABLE t (x INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.pool().evict_all().unwrap();
    let busy = db.disk().snapshot();
    assert!(busy.writes > 0, "setup produced no physical writes");
    db.disk().reset_stats();
    let idle = db.disk().snapshot();

    #[cfg(debug_assertions)]
    {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| idle.since(&busy)));
        std::panic::set_hook(prev);
        assert!(
            result.is_err(),
            "debug builds must assert on a misordered since()"
        );
    }
    #[cfg(not(debug_assertions))]
    {
        assert_eq!(
            idle.since(&busy),
            evopt::IoSnapshot::default(),
            "release builds must saturate a misordered since() to zero"
        );
    }
    // Correct ordering keeps working after the reset.
    db.execute("INSERT INTO t VALUES (4)").unwrap();
    db.pool().evict_all().unwrap();
    let after = db.disk().snapshot();
    let delta = after.since(&idle);
    assert!(delta.writes > 0);
}
