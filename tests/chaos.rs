//! Chaos suite (experiment R1): whole-stack fault injection.
//!
//! Each scenario loads a workload cleanly, then unleashes a deterministic,
//! seed-driven fault schedule (transient I/O errors, torn writes, bit
//! flips) on the simulated disk and re-runs real queries. The contract
//! under fire:
//!
//! 1. **No panics, ever.** Any panic anywhere in the stack fails the test.
//! 2. **Correct or typed.** Every query either returns exactly the
//!    fault-free answer or fails with a fault-class error
//!    (`is_fault()`): `Io`, `Corruption`, `Storage`, ...
//! 3. **Counters stay consistent.** Pool and disk accounting never
//!    contradict each other, faults included.
//!
//! Seeds: `CHAOS_SEED=<n>` pins one seed (the CI matrix runs 1, 2, 3);
//! without it every default seed runs in-process.

use evopt::{Database, DatabaseConfig, FaultConfig, Tuple};
use evopt_workload::{load_tpch_lite, load_wisconsin};

/// Seeds to exercise: the CHAOS_SEED env var pins one (CI matrix), default
/// is all three.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be an integer, got '{s}'"))],
        Err(_) => vec![1, 2, 3],
    }
}

/// A database with the chaos fault schedule installed but *disabled*, plus
/// a fault-free twin for ground truth. Both small-pooled so queries do real
/// I/O.
fn twin_dbs(seed: u64) -> (Database, Database) {
    let faulty = Database::new(DatabaseConfig {
        buffer_pages: 32,
        faults: Some(FaultConfig::chaos(seed)),
        ..Default::default()
    });
    faulty
        .fault_injector()
        .expect("built with faults")
        .set_enabled(false);
    let clean = Database::new(DatabaseConfig {
        buffer_pages: 32,
        ..Default::default()
    });
    (faulty, clean)
}

fn load_both(faulty: &Database, clean: &Database, seed: u64) {
    for db in [faulty, clean] {
        load_wisconsin(db, "wisc", 2000, seed).unwrap();
        db.execute("CREATE INDEX wisc_u1 ON wisc (unique1)")
            .unwrap();
        load_tpch_lite(db, 0.25, seed).unwrap();
        db.execute("ANALYZE").unwrap();
    }
}

/// Deterministic queries (ORDER BY throughout) spanning scans, index
/// lookups, sorts, aggregation, and multi-table joins — enough operator
/// diversity that spills and evictions happen in a 32-page pool.
const QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM wisc",
    "SELECT unique1, stringu1 FROM wisc WHERE unique1 < 40 ORDER BY unique1",
    "SELECT one_pct, COUNT(*) AS n FROM wisc GROUP BY one_pct ORDER BY one_pct",
    "SELECT ten_pct, MIN(unique2) AS lo, MAX(unique2) AS hi FROM wisc \
     GROUP BY ten_pct ORDER BY ten_pct",
    "SELECT COUNT(*) FROM orders o JOIN customer c ON o.o_customer = c.c_key",
    "SELECT c.c_nation, COUNT(*) AS n FROM orders o \
     JOIN customer c ON o.o_customer = c.c_key \
     GROUP BY c.c_nation ORDER BY n DESC, c.c_nation",
    "SELECT unique2 FROM wisc WHERE odd = 1 ORDER BY unique2 DESC",
];

/// The core chaos scenario for one seed.
fn run_chaos(seed: u64) {
    let (faulty, clean) = twin_dbs(seed);
    load_both(&faulty, &clean, seed);

    // Ground truth, computed fault-free.
    let expected: Vec<Vec<Tuple>> = QUERIES.iter().map(|q| clean.query(q).unwrap()).collect();

    let injector = faulty.fault_injector().unwrap().clone();
    let pool_before = faulty.pool().stats();
    let io_before = faulty.disk().snapshot();
    injector.set_enabled(true);

    let mut ok = 0u32;
    let mut typed_failures = 0u32;
    // Several rounds so the random schedule hits different pages/ops.
    for round in 0..6 {
        for (q, want) in QUERIES.iter().zip(&expected) {
            match faulty.query(q) {
                Ok(rows) => {
                    assert_eq!(
                        &rows, want,
                        "seed {seed} round {round}: wrong answer under faults for {q}"
                    );
                    ok += 1;
                }
                Err(e) => {
                    assert!(
                        e.is_fault(),
                        "seed {seed} round {round}: non-fault error {e:?} ({}) for {q}",
                        e.kind()
                    );
                    typed_failures += 1;
                }
            }
        }
    }
    injector.set_enabled(false);

    // The schedule actually fired.
    let report = injector.report();
    assert!(
        report.total() > 0,
        "seed {seed}: chaos schedule injected no faults in {} queries",
        ok + typed_failures
    );

    // Counter consistency across the storm. Every successful pool miss did
    // at least one physical read; fault-path fetches that failed clean did
    // not inflate the miss count past the reads that served them.
    let pool_delta = faulty.pool().stats().since(&pool_before);
    let io_delta = faulty.disk().snapshot().since(&io_before);
    assert!(
        io_delta.reads >= pool_delta.misses,
        "seed {seed}: {} pool misses but only {} physical reads",
        pool_delta.misses,
        io_delta.reads
    );
    assert_eq!(
        io_delta.read_faults + io_delta.write_faults,
        report.total(),
        "seed {seed}: disk snapshot and injector report disagree on fault count"
    );

    // The engine survives: with faults off again, every query answers
    // correctly unless it needs a page the schedule already corrupted on
    // disk (those must keep failing typed, never silently wrong).
    for (q, want) in QUERIES.iter().zip(&expected) {
        match faulty.query(q) {
            Ok(rows) => assert_eq!(&rows, want, "seed {seed}: wrong post-chaos answer for {q}"),
            Err(e) => assert!(
                e.is_fault(),
                "seed {seed}: non-fault post-chaos error {e:?} for {q}"
            ),
        }
    }
}

#[test]
fn chaos_wisconsin_tpch_survives_fault_storm() {
    for seed in chaos_seeds() {
        run_chaos(seed);
    }
}

/// Acceptance: 100% of injected silent corruptions (torn writes, bit
/// flips) are caught by page checksums — a corrupted page can only produce
/// `Corruption`, never wrong bytes.
#[test]
fn checksums_catch_every_injected_corruption() {
    for seed in chaos_seeds() {
        let (faulty, _clean) = twin_dbs(seed);
        load_wisconsin(&faulty, "wisc", 1500, seed).unwrap();
        faulty.execute("ANALYZE").unwrap();

        let pool = faulty.pool().clone();
        // Persist everything (stamping checksums), then empty the pool so
        // the next fetch must hit the corrupted disk image.
        pool.evict_all().unwrap();

        let injector = faulty.fault_injector().unwrap();
        let total_pages = faulty.disk().page_count();
        assert!(total_pages > 8, "expected a multi-page database");
        // Corrupt a deterministic sample: torn writes on even picks, bit
        // flips on odd ones.
        let victims: Vec<u64> = (0..total_pages).step_by(3).collect();
        for (i, &page) in victims.iter().enumerate() {
            if i % 2 == 0 {
                injector.force_torn_write(page).unwrap();
            } else {
                injector.force_bit_flip(page).unwrap();
            }
        }

        let mut caught = 0usize;
        for &page in &victims {
            match pool.fetch(page) {
                Err(e) => {
                    assert_eq!(
                        e.kind(),
                        "corruption",
                        "seed {seed}: page {page} failed with {e:?}, want Corruption"
                    );
                    caught += 1;
                }
                Ok(_) => panic!(
                    "seed {seed}: page {page} was corrupted on disk but fetch returned bytes"
                ),
            }
        }
        assert_eq!(
            caught,
            victims.len(),
            "seed {seed}: checksum catch rate below 100%"
        );
        assert!(
            pool.stats().corruptions >= victims.len() as u64,
            "seed {seed}: pool corruption counter did not track the catches"
        );
    }
}

/// Transient read faults (no on-disk damage) heal via the pool's bounded
/// retry: queries keep succeeding with correct answers, and the retry
/// counter shows the faults were absorbed rather than never injected.
#[test]
fn transient_faults_are_absorbed_by_retry() {
    let seed = chaos_seeds()[0];
    // Transient faults only — nothing persists on disk, so every fault
    // must heal within the pool's bounded retry.
    let faulty = Database::new(DatabaseConfig {
        buffer_pages: 16,
        faults: Some(FaultConfig {
            seed,
            read_error: 0.20,
            write_error: 0.10,
            bit_flip_read: 0.10,
            ..FaultConfig::default()
        }),
        ..Default::default()
    });
    let injector = faulty.fault_injector().unwrap().clone();
    injector.set_enabled(false);
    load_wisconsin(&faulty, "wisc", 1200, seed).unwrap();
    faulty.execute("ANALYZE").unwrap();
    let want = faulty.query("SELECT COUNT(*) FROM wisc").unwrap();

    injector.set_enabled(true);
    for _ in 0..5 {
        // Force physical re-reads each round.
        faulty.pool().evict_all().unwrap();
        let got = faulty
            .query("SELECT COUNT(*) FROM wisc")
            .expect("transient faults must heal via bounded retry");
        assert_eq!(got, want);
    }
    injector.set_enabled(false);
    assert!(
        faulty.pool().stats().retries > 0,
        "retry counter never moved — schedule injected nothing"
    );
    assert_eq!(
        faulty.pool().stats().corruptions,
        0,
        "transient-only schedule must not corrupt"
    );
}
