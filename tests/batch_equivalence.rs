//! Differential equivalence suite for batch-vectorized execution.
//!
//! The refactor from tuple-at-a-time Volcano to batch-at-a-time must be
//! invisible in results: the same query or forced physical plan, run at any
//! batch size — including the degenerate tuple-at-a-time `batch_rows = 1` —
//! must return identical rows. SQL-level coverage runs a query battery over
//! Wisconsin and TPC-H-lite data; plan-level coverage forces every join
//! family past the optimizer's choices. Edge cases: empty inputs, results
//! that fit exactly one batch, results straddling batch boundaries, and
//! LIMITs that cut a batch mid-way.

use std::sync::Arc;

use evopt::{Database, Tuple};
use evopt_catalog::{analyze_table, AnalyzeConfig, Catalog};
use evopt_common::expr::col;
use evopt_common::{Column, DataType, Expr, Schema, Value};
use evopt_core::cost::Cost;
use evopt_core::physical::{PhysOp, PhysicalPlan};
use evopt_exec::{run_collect, ExecEnv};
use evopt_storage::{BufferPool, DiskManager, PolicyKind};
use evopt_workload::tpch_lite::queries;
use evopt_workload::{load_tpch_lite, load_wisconsin};

/// 1 is the tuple-at-a-time baseline; 3 forces many ragged partial batches;
/// 1024 is the default; 4096 puts whole results in one batch.
const BATCH_SIZES: [usize; 4] = [3, 64, 1024, 4096];

/// Order-insensitive fingerprint of a result set.
fn normalized(rows: &[Tuple]) -> Vec<String> {
    let mut keys: Vec<String> = rows.iter().map(|t| format!("{t:?}")).collect();
    keys.sort();
    keys
}

fn fixture() -> Database {
    let db = Database::with_defaults();
    // 2500 rows: straddles 1024-row batches (2 full + 1 partial).
    load_wisconsin(&db, "wisc", 2500, 11).unwrap();
    db.execute("CREATE UNIQUE INDEX wisc_u1 ON wisc (unique1)")
        .unwrap();
    db.execute("CREATE TABLE empty_t (x INT, y STRING)")
        .unwrap();
    load_tpch_lite(&db, 0.2, 23).unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// One query per operator family, plus the edge cases.
fn query_battery() -> Vec<&'static str> {
    vec![
        // Scan, filter, projection expressions.
        "SELECT unique1, stringu1 FROM wisc",
        "SELECT unique1 * 2, ten_pct FROM wisc WHERE one_pct < 7",
        "SELECT * FROM wisc WHERE odd = 1 AND ten_pct BETWEEN 2 AND 5",
        // Empty result from a non-empty input.
        "SELECT * FROM wisc WHERE unique1 < 0",
        // Empty input through filter, aggregate, group-by, sort.
        "SELECT * FROM empty_t WHERE x > 0",
        "SELECT COUNT(*), SUM(x) FROM empty_t",
        "SELECT y, COUNT(*) FROM empty_t GROUP BY y",
        "SELECT * FROM empty_t ORDER BY x",
        // Index scans: point, range, residual.
        "SELECT stringu1 FROM wisc WHERE unique1 = 1234",
        "SELECT unique1 FROM wisc WHERE unique1 BETWEEN 100 AND 300",
        "SELECT unique1 FROM wisc WHERE unique1 < 500 AND odd = 0",
        // LIMIT cutting a batch mid-way, below and above one batch.
        "SELECT unique2 FROM wisc LIMIT 7",
        "SELECT unique1 FROM wisc ORDER BY unique1 LIMIT 1500",
        "SELECT unique2 FROM wisc LIMIT 0",
        // External sort (unique keys: total order).
        "SELECT unique1, stringu1 FROM wisc ORDER BY unique1",
        "SELECT one_pct, unique2 FROM wisc ORDER BY one_pct, unique2",
        // Aggregates: ungrouped, grouped, DISTINCT.
        "SELECT COUNT(*), SUM(unique1), MIN(unique1), MAX(unique1), AVG(ten_pct) FROM wisc",
        "SELECT ten_pct, COUNT(*) AS n, SUM(unique2) FROM wisc GROUP BY ten_pct ORDER BY ten_pct",
        "SELECT DISTINCT twenty_pct FROM wisc ORDER BY twenty_pct",
        // Multi-join pipelines over TPC-H-lite.
        queries::REVENUE_PER_NATION,
        queries::CUSTOMER_ORDERS,
        queries::SHIPPED_BIG_ORDERS,
    ]
}

#[test]
fn sql_battery_identical_across_batch_sizes() {
    let db = fixture();
    // Baseline: degenerate tuple-at-a-time execution.
    db.set_batch_rows(1);
    let baseline: Vec<Vec<Tuple>> = query_battery()
        .iter()
        .map(|sql| db.query(sql).unwrap())
        .collect();
    for bs in BATCH_SIZES {
        db.set_batch_rows(bs);
        for (sql, want) in query_battery().iter().zip(&baseline) {
            let got = db.query(sql).unwrap();
            assert_eq!(
                normalized(&got),
                normalized(want),
                "batch_rows={bs} changed the result of {sql}"
            );
            // ORDER BY on a unique key pins the exact order, not just the
            // multiset.
            if sql.contains("ORDER BY unique1") {
                assert_eq!(&got, want, "batch_rows={bs} changed row order of {sql}");
            }
        }
    }
}

#[test]
fn sql_battery_identical_row_vs_columnar() {
    // The columnar port (typed filter kernels, typed join key maps, typed
    // aggregation) must be invisible in results: the whole battery, run in
    // row mode and in columnar mode at several batch sizes, returns
    // identical rows.
    let db = fixture();
    for bs in [1, 64, 1024] {
        db.set_batch_rows(bs);
        for sql in query_battery() {
            db.set_columnar(false);
            let want = db.query(sql).unwrap();
            db.set_columnar(true);
            let got = db.query(sql).unwrap();
            assert_eq!(
                normalized(&got),
                normalized(&want),
                "columnar mode changed the result of {sql} at batch_rows={bs}"
            );
            if sql.contains("ORDER BY unique1") {
                assert_eq!(
                    got, want,
                    "columnar mode changed row order of {sql} at batch_rows={bs}"
                );
            }
        }
    }
}

#[test]
fn result_fitting_exactly_one_batch() {
    let db = Database::with_defaults();
    load_wisconsin(&db, "exact", 50, 3).unwrap();
    db.execute("ANALYZE").unwrap();
    db.set_batch_rows(1);
    let want = db.query("SELECT * FROM exact").unwrap();
    assert_eq!(want.len(), 50);
    // One-under, exact, and one-over the result size.
    for bs in [49, 50, 51] {
        db.set_batch_rows(bs);
        let got = db.query("SELECT * FROM exact").unwrap();
        assert_eq!(normalized(&got), normalized(&want), "batch_rows={bs}");
    }
}

// ---------------------------------------------------------------------------
// Plan-level: force every join family regardless of optimizer choice.
// ---------------------------------------------------------------------------

/// `l(a INT, tag STRING)` and `r(b INT, payload INT)` with `b` indexed;
/// keys collide so joins fan out, and both sides carry NULL keys.
fn join_world(n_left: i64, n_right: i64, key_space: i64, pool_pages: usize) -> ExecEnv {
    let pool = BufferPool::new(Arc::new(DiskManager::new()), pool_pages, PolicyKind::Lru);
    let cat = Arc::new(Catalog::new(pool));
    let l = cat
        .create_table(
            "l",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("tag", DataType::Str),
            ]),
        )
        .unwrap();
    for i in 0..n_left {
        let key = if i % 17 == 0 {
            Value::Null
        } else {
            Value::Int(i % key_space)
        };
        l.heap
            .insert(&Tuple::new(vec![key, Value::Str(format!("L{i}"))]))
            .unwrap();
    }
    let r = cat
        .create_table(
            "r",
            Schema::new(vec![
                Column::new("b", DataType::Int),
                Column::new("payload", DataType::Int),
            ]),
        )
        .unwrap();
    for i in 0..n_right {
        let key = if i % 23 == 0 {
            Value::Null
        } else {
            Value::Int(i % key_space)
        };
        r.heap
            .insert(&Tuple::new(vec![key, Value::Int(i * 100)]))
            .unwrap();
    }
    cat.create_index("r_b", "r", "b", false, false).unwrap();
    // create_index clone-and-swaps r's TableInfo (CoW catalog): re-fetch
    // so the stats land on the registered entry, not a stale snapshot.
    let r = cat.table("r").unwrap();
    analyze_table(&l, &AnalyzeConfig::default()).unwrap();
    analyze_table(&r, &AnalyzeConfig::default()).unwrap();
    ExecEnv::new(cat, pool_pages)
}

fn plan(op: PhysOp, schema: Schema) -> PhysicalPlan {
    PhysicalPlan {
        op,
        schema,
        est_rows: 0.0,
        est_cost: Cost::ZERO,
        output_order: None,
    }
}

fn scan(env: &ExecEnv, t: &str) -> PhysicalPlan {
    let schema = env.catalog.table(t).unwrap().schema.clone();
    plan(
        PhysOp::SeqScan {
            table: t.into(),
            filter: None,
        },
        schema,
    )
}

fn sorted_scan(env: &ExecEnv, t: &str) -> PhysicalPlan {
    let s = scan(env, t);
    let schema = s.schema.clone();
    plan(
        PhysOp::Sort {
            input: Box::new(s),
            keys: vec![(0, true)],
        },
        schema,
    )
}

/// Every join family over the same inputs.
fn join_plans(env: &ExecEnv) -> Vec<(&'static str, PhysicalPlan)> {
    let schema = scan(env, "l").schema.join(&scan(env, "r").schema);
    let pred = Some(Expr::eq(col(0), col(2)));
    vec![
        (
            "NestedLoopJoin",
            plan(
                PhysOp::NestedLoopJoin {
                    left: Box::new(scan(env, "l")),
                    right: Box::new(scan(env, "r")),
                    predicate: pred.clone(),
                },
                schema.clone(),
            ),
        ),
        (
            "BlockNestedLoopJoin",
            plan(
                PhysOp::BlockNestedLoopJoin {
                    left: Box::new(scan(env, "l")),
                    right: Box::new(scan(env, "r")),
                    predicate: pred,
                    block_pages: 4,
                },
                schema.clone(),
            ),
        ),
        (
            "IndexNestedLoopJoin",
            plan(
                PhysOp::IndexNestedLoopJoin {
                    outer: Box::new(scan(env, "l")),
                    inner_table: "r".into(),
                    index: "r_b".into(),
                    outer_key: 0,
                    residual: None,
                },
                schema.clone(),
            ),
        ),
        (
            "SortMergeJoin",
            plan(
                PhysOp::SortMergeJoin {
                    left: Box::new(sorted_scan(env, "l")),
                    right: Box::new(sorted_scan(env, "r")),
                    left_key: 0,
                    right_key: 0,
                    residual: None,
                },
                schema.clone(),
            ),
        ),
        (
            "HashJoin",
            plan(
                PhysOp::HashJoin {
                    left: Box::new(scan(env, "l")),
                    right: Box::new(scan(env, "r")),
                    left_key: 0,
                    right_key: 0,
                    residual: None,
                },
                schema,
            ),
        ),
    ]
}

#[test]
fn every_join_family_identical_across_batch_sizes() {
    let env = join_world(200, 300, 40, 16);
    for (name, p) in join_plans(&env) {
        let want = run_collect(&p, &env.clone().with_batch_rows(1)).unwrap();
        assert!(!want.is_empty(), "{name}: fixture should produce matches");
        for bs in BATCH_SIZES {
            let got = run_collect(&p, &env.clone().with_batch_rows(bs)).unwrap();
            assert_eq!(
                normalized(&got),
                normalized(&want),
                "{name} differs at batch_rows={bs}"
            );
        }
    }
}

#[test]
fn every_join_family_identical_row_vs_columnar() {
    // Same forced-plan battery, row mode vs columnar mode. The fixture's
    // NULL keys (every 17th left row, every 23rd right row) make this a
    // NULL-semantics check too: a columnar key map that matched NULLs
    // would show up as extra rows here.
    let env = join_world(200, 300, 40, 16);
    for (name, p) in join_plans(&env) {
        for bs in [1, 64, 1024] {
            let want =
                run_collect(&p, &env.clone().with_batch_rows(bs).with_columnar(false)).unwrap();
            let got =
                run_collect(&p, &env.clone().with_batch_rows(bs).with_columnar(true)).unwrap();
            assert_eq!(
                normalized(&got),
                normalized(&want),
                "{name} differs between row and columnar mode at batch_rows={bs}"
            );
        }
    }
}

#[test]
fn joins_over_empty_inputs_across_batch_sizes() {
    // Empty probe side, empty build side: every family must return nothing
    // at every batch size without erroring.
    let env = join_world(0, 0, 1, 16);
    for (name, p) in join_plans(&env) {
        for bs in [1, 3, 1024] {
            let got = run_collect(&p, &env.clone().with_batch_rows(bs)).unwrap();
            assert!(got.is_empty(), "{name} invented rows at batch_rows={bs}");
        }
    }
}

#[test]
fn grace_hash_join_identical_across_batch_sizes() {
    // A 3-page budget forces the hash join's build side to spill into
    // Grace partitions; partitioned probing must stay batch-size invariant.
    let env = join_world(800, 1200, 60, 3);
    let p = join_plans(&env).pop().unwrap().1;
    let want = run_collect(&p, &env.clone().with_batch_rows(1)).unwrap();
    assert!(!want.is_empty());
    for bs in BATCH_SIZES {
        let got = run_collect(&p, &env.clone().with_batch_rows(bs)).unwrap();
        assert_eq!(
            normalized(&got),
            normalized(&want),
            "Grace hash join differs at batch_rows={bs}"
        );
    }
}

#[test]
fn grace_hash_join_identical_row_vs_columnar() {
    // The Grace spill path still runs the row shim in columnar mode; the
    // in-memory/spill decision and the per-partition results must agree
    // with row mode either way.
    let env = join_world(800, 1200, 60, 3);
    let p = join_plans(&env).pop().unwrap().1;
    let want = run_collect(&p, &env.clone().with_batch_rows(1024).with_columnar(false)).unwrap();
    assert!(!want.is_empty());
    for bs in [1, 64, 1024] {
        let got = run_collect(&p, &env.clone().with_batch_rows(bs).with_columnar(true)).unwrap();
        assert_eq!(
            normalized(&got),
            normalized(&want),
            "Grace hash join differs between row and columnar mode at batch_rows={bs}"
        );
    }
}

#[test]
fn external_sort_spill_identical_across_batch_sizes() {
    // Same trick for the sort: a tiny budget forces run spills and a
    // multi-run merge; the merged stream must re-batch losslessly.
    let env = join_world(2000, 0, 500, 3);
    let p = sorted_scan(&env, "l");
    let want = run_collect(&p, &env.clone().with_batch_rows(1)).unwrap();
    assert_eq!(want.len(), 2000);
    for bs in BATCH_SIZES {
        let got = run_collect(&p, &env.clone().with_batch_rows(bs)).unwrap();
        // Sorted output: exact order must match, not just the multiset.
        assert_eq!(got, want, "spilled sort differs at batch_rows={bs}");
    }
}
