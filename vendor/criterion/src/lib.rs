//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of criterion the benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`. It reports mean wall-clock per
//! iteration with no statistical machinery — good enough for eyeballing
//! regressions without the real dependency.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of the standard black box to keep optimizer honesty.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let mut group = self.benchmark_group(label.clone());
        group.bench_function("", f);
        group.finish();
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{id}", self.name)
        };
        match b.summary() {
            Some((mean, lo, hi)) => println!(
                "{label:<60} time: [{} {} {}]",
                fmt_dur(lo),
                fmt_dur(mean),
                fmt_dur(hi)
            ),
            None => println!("{label:<60} (no samples)"),
        }
    }
}

/// Unit annotation accepted for API compatibility (ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then `sample_size` timed samples.
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// (mean, min, max) over collected samples.
    fn summary(&self) -> Option<(Duration, Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let lo = *self.samples.iter().min().unwrap();
        let hi = *self.samples.iter().max().unwrap();
        Some((mean, lo, hi))
    }
}

/// Batch sizing hint accepted for API compatibility (ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
