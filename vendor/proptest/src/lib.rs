//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest its tests rely on: the `proptest!` macro, `Strategy`
//! with `prop_map` / `prop_filter` / `prop_recursive`, `prop_oneof!`, `Just`,
//! `any::<T>()`, numeric-range and string strategies, and
//! `prop::collection::vec`. Cases are generated from a deterministic
//! per-case RNG; there is **no shrinking** — a failing case panics with the
//! generated inputs left to the assertion message.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps debug-mode suites fast
            // while still exercising plenty of the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64-fed xorshift generator, seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> TestRng {
            // Golden-ratio stride decorrelates consecutive cases.
            TestRng {
                state: 0xB5AD_4ECE_DA1C_E2A9 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values. Unlike real proptest there is no value tree —
    /// `generate` draws a fresh value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        fn prop_filter<F>(self, reason: &'static str, pred: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| {
                for _ in 0..1000 {
                    let v = inner.generate(rng);
                    if pred(&v) {
                        return v;
                    }
                }
                panic!("prop_filter '{reason}' rejected 1000 candidates");
            })
        }

        /// Build recursive values: `recurse` receives the strategy for the
        /// next depth level; nesting bottoms out at `self` after `depth`
        /// applications. `desired_size`/`expected_branch_size` are accepted
        /// for API compatibility and ignored.
        fn prop_recursive<F, S2>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.boxed();
            for _ in 0..depth {
                cur = recurse(cur).boxed();
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<T> BoxedStrategy<T> {
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub fn one_of<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::from_fn(move |rng| {
            let i = rng.below(choices.len());
            choices[i].generate(rng)
        })
    }

    /// `any::<T>()` marker produced by [`super::arbitrary::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T> Any<T> {
        pub fn new() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any::new()
        }
    }

    impl<T: super::arbitrary::ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    // Numeric range strategies.
    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.next_f64() * (self.end() - self.start())
        }
    }

    /// String pattern strategy. Real proptest interprets `&str` as a regex;
    /// this stand-in honours the common `.{lo,hi}` length form and otherwise
    /// produces 0..32 chars. Characters are mostly printable ASCII with a
    /// sprinkling of multi-byte code points to stress encoders.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
            let len = lo + rng.below(hi - lo + 1);
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.below(10) {
                    0 => {
                        // Arbitrary scalar value (skip surrogates).
                        let v = (rng.next_u64() % 0x11_0000) as u32;
                        char::from_u32(v).unwrap_or('\u{FFFD}')
                    }
                    1 => char::from_u32(0xA0 + rng.below(0x500) as u32).unwrap_or('é'),
                    _ => (0x20u8 + rng.below(0x5F) as u8) as char,
                };
                s.push(c);
            }
            s
        }
    }

    /// Parse `.{lo,hi}` → `(lo, hi)`.
    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    // Tuples of strategies are strategies over tuples.
    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

pub mod arbitrary {
    use super::strategy::Any;
    use super::test_runner::TestRng;

    /// Types with a canonical "anything goes" generator.
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        /// Raw bit patterns: exercises infinities, NaN payloads, subnormals.
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl ArbitraryValue for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any::new()
    }
}

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};

    /// Length specification for [`vec`]: a range or an exact length.
    pub trait SizeSpec {
        fn pick(&self, rng: &mut super::test_runner::TestRng) -> usize;
    }

    impl SizeSpec for std::ops::Range<usize> {
        fn pick(&self, rng: &mut super::test_runner::TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeSpec for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut super::test_runner::TestRng) -> usize {
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    impl SizeSpec for usize {
        fn pick(&self, _rng: &mut super::test_runner::TestRng) -> usize {
            *self
        }
    }

    /// Vectors of `len ∈ size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: impl SizeSpec + 'static) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` deterministic random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_case() {
        let s = prop::collection::vec(0i64..100, 1..10);
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)];
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v), "got {v}");
        }
    }

    #[test]
    fn string_pattern_respects_bounds() {
        let s = ".{0,64}";
        let mut rng = crate::test_runner::TestRng::for_case(1);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v.chars().count() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(a in 0i64..10, b in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b.len() < 4);
        }
    }
}
