//! Offline stand-in for the `rand` crate (0.10-era API surface).
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `rand` it uses: `StdRng` + `SeedableRng::seed_from_u64`, the
//! `RngExt` convenience methods (`random`, `random_range`, `random_bool`),
//! and `seq::SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is all the workload
//! generators and differential fuzzers rely on.

/// Core source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Non-cryptographic "entropy": a time-derived seed. Deterministic tests
    /// should use `seed_from_u64`.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(t)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the default generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stand-in has a single generator.
    pub type SmallRng = StdRng;
}

/// Types producible by [`RngExt::random`].
pub trait StandardValue {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardValue for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty random_range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// The `rand 0.10` convenience surface (`random*` naming).
pub trait RngExt: RngCore {
    fn random<T: StandardValue>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.next_f64() < p
    }

    /// Sample from a distribution-like object (anything with `sample(&mut R)`).
    fn sample_iter(&mut self) {}
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Back-compat alias: older call sites name the trait `Rng`.
pub use self::RngExt as Rng;

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = rng.random_range(0..=3usize);
            assert!(u <= 3);
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }
}
