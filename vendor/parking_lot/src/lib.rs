//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! tiny slice of `parking_lot` it actually uses: `Mutex` and `RwLock` with
//! the non-poisoning API. Lock poisoning is deliberately swallowed — a
//! panicking critical section in this codebase aborts the query, and the
//! protected structures (buffer pool tables, catalogs) are rebuilt from disk
//! state, never trusted across a panic.

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s API shape.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
